"""Clustering of logged search data into challenging regions.

The paper's closing discussion (Section VIII) notes the GA only
identifies discrete *points* and suggests extending the approach with
data-mining — clustering — to find *areas* of the search space with
high accident rates.  This module implements that extension: a k-means
clustering (Lloyd's algorithm, k-means++ seeding) of high-fitness
genomes, normalized gene-wise by the parameter ranges so heterogeneous
units (m/s, seconds, radians) contribute comparably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.encounters.encoding import PARAMETER_NAMES, EncounterParameters
from repro.encounters.generator import ParameterRanges
from repro.util.rng import SeedLike, as_generator


@dataclass
class KMeansResult:
    """Clusters of challenging encounters.

    Attributes
    ----------
    centers:
        Cluster centres in original (unnormalized) genome coordinates,
        shape ``(k, genes)``.
    labels:
        Cluster assignment per input genome.
    inertia:
        Sum of squared normalized distances to assigned centres.
    sizes:
        Genomes per cluster.
    """

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    sizes: np.ndarray

    @property
    def k(self) -> int:
        """Number of clusters."""
        return self.centers.shape[0]

    def center_parameters(self, index: int) -> EncounterParameters:
        """Cluster centre *index* decoded as encounter parameters."""
        return EncounterParameters.from_array(self.centers[index])

    def describe(self) -> List[dict]:
        """Readable per-cluster summaries (centre values by name)."""
        return [
            {
                "cluster": i,
                "size": int(self.sizes[i]),
                **{
                    name: round(float(value), 3)
                    for name, value in zip(PARAMETER_NAMES, self.centers[i])
                },
            }
            for i in range(self.k)
        ]


def _kmeans_pp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding."""
    n = points.shape[0]
    centers = [points[rng.integers(n)]]
    for _ in range(1, k):
        dist_sq = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centers], axis=0
        )
        total = dist_sq.sum()
        if total <= 0:
            centers.append(points[rng.integers(n)])
            continue
        probs = dist_sq / total
        centers.append(points[rng.choice(n, p=probs)])
    return np.array(centers)


def cluster_genomes(
    genomes: np.ndarray,
    k: int,
    ranges: Optional[ParameterRanges] = None,
    max_iterations: int = 100,
    seed: SeedLike = None,
) -> KMeansResult:
    """k-means over genome vectors, normalized by the parameter ranges.

    Parameters
    ----------
    genomes:
        Shape ``(n, genes)`` — typically the high-fitness individuals
        of a finished search.
    k:
        Number of clusters (must not exceed the number of genomes).
    ranges:
        Normalization box (defaults to the standard scenario ranges).
    max_iterations:
        Lloyd iteration cap.
    seed:
        RNG seed for the k-means++ initialization.
    """
    genomes = np.atleast_2d(np.asarray(genomes, dtype=float))
    if k < 1 or k > genomes.shape[0]:
        raise ValueError(
            f"k must be in [1, {genomes.shape[0]}], got {k}"
        )
    ranges = ranges or ParameterRanges()
    lows, highs = ranges.lows(), ranges.highs()
    widths = np.where(highs > lows, highs - lows, 1.0)
    normalized = (genomes - lows) / widths

    rng = as_generator(seed)
    centers = _kmeans_pp_init(normalized, k, rng)
    labels = np.zeros(genomes.shape[0], dtype=np.int64)
    for iteration in range(max_iterations):
        distances = np.stack(
            [np.sum((normalized - c) ** 2, axis=1) for c in centers]
        )
        new_labels = np.argmin(distances, axis=0)
        if iteration > 0 and np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for j in range(k):
            members = normalized[labels == j]
            if len(members) > 0:
                centers[j] = members.mean(axis=0)

    distances = np.stack(
        [np.sum((normalized - c) ** 2, axis=1) for c in centers]
    )
    inertia = float(np.min(distances, axis=0).sum())
    sizes = np.bincount(labels, minlength=k)
    return KMeansResult(
        centers=centers * widths + lows,
        labels=labels,
        inertia=inertia,
        sizes=sizes,
    )
