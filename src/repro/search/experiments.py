"""Repeated-trial search comparisons: GA vs random, properly sampled.

The paper's Section V claim (via ref [7]) is about *search efficiency*:
the GA finds challenging cases random search takes much longer to find.
A single trial cannot support that; this harness runs both methods for
several independent repetitions at an identical evaluation budget and
reports best-found distributions and time-to-target statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.encounters.generator import ParameterRanges
from repro.search.ga import FitnessFunction, GAConfig, GeneticAlgorithm
from repro.search.random_search import random_search
from repro.util.rng import SeedLike, as_generator

#: Builds a fresh fitness callable for one trial (seeded independently).
FitnessFactory = Callable[[int], FitnessFunction]


def best_so_far(fitnesses: np.ndarray) -> np.ndarray:
    """Cumulative best over an evaluation sequence."""
    return np.maximum.accumulate(np.asarray(fitnesses, dtype=float))


def time_to_target(fitnesses: np.ndarray, target: float) -> Optional[int]:
    """Index of the first evaluation reaching *target* (None if never)."""
    hits = np.flatnonzero(np.asarray(fitnesses, dtype=float) >= target)
    return int(hits[0]) if hits.size else None


@dataclass
class MethodTrials:
    """Per-repetition outcomes of one search method."""

    name: str
    best_fitnesses: np.ndarray
    hit_times: List[Optional[int]]

    @property
    def mean_best(self) -> float:
        """Mean of best-found fitness over repetitions."""
        return float(self.best_fitnesses.mean())

    @property
    def hit_rate(self) -> float:
        """Fraction of repetitions that reached the target."""
        if not self.hit_times:
            return 0.0
        return sum(t is not None for t in self.hit_times) / len(self.hit_times)

    def mean_hit_time(self, budget: int) -> float:
        """Mean evaluations-to-target, counting misses as the budget.

        The budget-censored mean is the standard conservative summary
        for first-hitting-time comparisons with failures.
        """
        times = [t if t is not None else budget for t in self.hit_times]
        return float(np.mean(times))


@dataclass
class ComparisonResult:
    """GA-vs-random comparison over repeated trials."""

    ga: MethodTrials
    random: MethodTrials
    budget: int
    repetitions: int
    target: float

    def summary(self) -> str:
        """Readable comparison table."""
        lines = [
            f"{self.repetitions} repetitions x {self.budget} evaluations, "
            f"target fitness {self.target:.1f}",
            f"{'method':<8} {'mean best':>10} {'hit rate':>9} "
            f"{'mean evals-to-target':>21}",
        ]
        for trials in (self.ga, self.random):
            lines.append(
                f"{trials.name:<8} {trials.mean_best:>10.1f} "
                f"{trials.hit_rate:>9.2f} "
                f"{trials.mean_hit_time(self.budget):>21.1f}"
            )
        return "\n".join(lines)


def compare_ga_and_random(
    ranges: ParameterRanges,
    fitness_factory: FitnessFactory,
    ga_config: GAConfig,
    repetitions: int = 5,
    target: float = 1000.0,
    seed: SeedLike = None,
) -> ComparisonResult:
    """Run both methods *repetitions* times at equal budget.

    Parameters
    ----------
    ranges:
        Search space.
    fitness_factory:
        ``fitness_factory(trial_seed)`` returns the fitness callable for
        one trial; both methods get independently seeded instances so
        their simulation noise is uncorrelated.
    ga_config:
        GA settings; the evaluation budget is
        ``population_size * generations`` and random search gets the
        same number.
    repetitions:
        Independent trials per method.
    target:
        Fitness threshold for time-to-target statistics.
    seed:
        Master seed.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    rng = as_generator(seed)
    budget = ga_config.population_size * ga_config.generations

    ga_best: List[float] = []
    ga_hits: List[Optional[int]] = []
    rs_best: List[float] = []
    rs_hits: List[Optional[int]] = []
    for __ in range(repetitions):
        trial_seed = int(rng.integers(0, 2**31 - 1))

        ga = GeneticAlgorithm(ranges, ga_config)
        ga_result = ga.run(fitness_factory(trial_seed), seed=trial_seed)
        __, ga_fitnesses = ga_result.all_evaluated()
        ga_best.append(float(ga_fitnesses.max()))
        ga_hits.append(time_to_target(ga_fitnesses, target))

        rs_result = random_search(
            ranges,
            fitness_factory(trial_seed + 1),
            budget=budget,
            seed=trial_seed,
            target_fitness=target,
        )
        rs_best.append(rs_result.best_fitness)
        rs_hits.append(rs_result.first_hit_index)

    return ComparisonResult(
        ga=MethodTrials("GA", np.array(ga_best), ga_hits),
        random=MethodTrials("random", np.array(rs_best), rs_hits),
        budget=budget,
        repetitions=repetitions,
        target=target,
    )
