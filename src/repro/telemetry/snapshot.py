"""Fleet-wide metrics assembly: one scrape body from every source.

The registry (:mod:`repro.telemetry.metrics`) only knows what *this*
process counted.  A scrape of a running deployment needs three more
things merged in:

- every worker's published counters, read back through the queue's
  ``worker_metrics`` table (:meth:`WorkQueue.fleet_metric_samples`);
- derived state gauges nobody increments — chunk rows by status, job
  count, registered/live workers (from the queue) and stored
  campaign/record totals (from the store) are facts *read* from sqlite
  at scrape time, not events counted along the way;
- process vitals (uptime).

:func:`assemble` returns merged samples; :func:`scrape` renders them
straight to Prometheus text exposition — the body of ``GET /metrics``
and of ``repro metrics``.  Both are read-only and best-effort: a
missing or locked queue/store contributes nothing rather than failing
the probe.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Union

from repro.telemetry.metrics import (
    REGISTRY,
    MetricsRegistry,
    exposition,
    merge_samples,
)

PathLike = Union[str, Path, None]


def _queue_samples(queue_path: PathLike) -> List[dict]:
    """Worker-published counters plus queue-state gauges."""
    if queue_path is None or not os.path.exists(str(queue_path)):
        return []
    from repro.distributed.queue import DEFAULT_WORKER_TTL, WorkQueue

    samples: List[dict] = []
    try:
        with WorkQueue(queue_path) as queue:
            samples.extend(queue.fleet_metric_samples())
            status_totals = {
                "pending": 0, "claimed": 0, "done": 0, "failed": 0,
            }
            for counts in queue.counts().values():
                for status in status_totals:
                    status_totals[status] += getattr(counts, status)
            for status, count in status_totals.items():
                samples.append({
                    "name": "repro_queue_chunks",
                    "kind": "gauge",
                    "help": "Chunk rows in the queue by status.",
                    "labels": {"status": status},
                    "value": float(count),
                })
            samples.append({
                "name": "repro_queue_jobs",
                "kind": "gauge",
                "help": "Campaign jobs registered in the queue.",
                "labels": {},
                "value": float(len(queue.jobs())),
            })
            workers = queue.workers()
            now = queue.now()
            live = sum(
                1 for worker in workers
                if worker.heartbeat >= now - DEFAULT_WORKER_TTL
            )
            for state, count in (
                ("registered", len(workers)), ("live", live),
            ):
                samples.append({
                    "name": "repro_fleet_workers",
                    "kind": "gauge",
                    "help": "Workers known to the queue by liveness.",
                    "labels": {"state": state},
                    "value": float(count),
                })
    except Exception:
        return []
    return samples


def _store_samples(store_path: PathLike) -> List[dict]:
    """Stored campaign/record totals as gauges."""
    if store_path is None:
        return []
    path = str(store_path)
    if path != ":memory:" and not os.path.exists(path):
        return []
    from repro.store import ResultStore

    try:
        with ResultStore(path) as store:
            totals = store.totals()
    except Exception:
        return []
    return [
        {
            "name": f"repro_store_{key}",
            "kind": "gauge",
            "help": f"Total {key} rows in the result store.",
            "labels": {},
            "value": float(count),
        }
        for key, count in totals.items()
    ]


def assemble(
    registry: Optional[MetricsRegistry] = None,
    queue_path: PathLike = None,
    store_path: PathLike = None,
    uptime: Optional[float] = None,
    extra: Optional[List[dict]] = None,
) -> List[dict]:
    """Merge every metrics source into one flat sample list."""
    registry = REGISTRY if registry is None else registry
    local = list(registry.flatten())
    if uptime is not None:
        local.append({
            "name": "repro_uptime_seconds",
            "kind": "gauge",
            "help": "Seconds since this process started serving.",
            "labels": {},
            "value": float(uptime),
        })
    if extra:
        local.extend(extra)
    return merge_samples(
        local, _queue_samples(queue_path), _store_samples(store_path)
    )


def scrape(
    registry: Optional[MetricsRegistry] = None,
    queue_path: PathLike = None,
    store_path: PathLike = None,
    uptime: Optional[float] = None,
    extra: Optional[List[dict]] = None,
) -> str:
    """The full Prometheus text exposition for one scrape."""
    return exposition(assemble(
        registry=registry,
        queue_path=queue_path,
        store_path=store_path,
        uptime=uptime,
        extra=extra,
    ))
