"""Span tracer: cross-process campaign traces in a per-store sqlite table.

A :class:`Collector` is armed per process and writes finished spans
into a ``spans`` table living in the same sqlite file as the result
store, so a campaign's trace travels with its results.  Spans carry a
``trace_id`` shared across processes: the coordinator stamps it into
the queue job's metadata, workers pick it up (or read ``REPRO_TRACE``)
and parent their chunk spans to the coordinator's root span — no
collector daemon, no sockets, same crash-safe WAL transport as the
queue and store.

Timing discipline: ``duration`` is a ``perf_counter`` delta (immune to
wall-clock skew, the PR-5 rule); ``started_at`` is a wall-clock anchor
used only to align spans from different hosts on one waterfall.

Span ids come from ``os.urandom`` — never the campaign's seeded RNG —
so tracing cannot perturb bitwise determinism.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Collector",
    "Span",
    "critical_path",
    "load_spans",
    "new_id",
    "render_trace",
    "span_tree",
    "trace_payload",
]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS spans (
    span_id    TEXT PRIMARY KEY,
    trace_id   TEXT NOT NULL,
    parent_id  TEXT,
    name       TEXT NOT NULL,
    campaign_id TEXT,
    process    TEXT NOT NULL,
    started_at REAL NOT NULL,
    duration   REAL,
    status     TEXT NOT NULL DEFAULT 'ok',
    attributes TEXT NOT NULL DEFAULT '{}',
    events     TEXT NOT NULL DEFAULT '[]'
);
CREATE INDEX IF NOT EXISTS idx_spans_trace ON spans (trace_id);
CREATE INDEX IF NOT EXISTS idx_spans_campaign ON spans (campaign_id);
"""

_FLUSH_THRESHOLD = 64


def new_id() -> str:
    """16-hex-char id from the OS entropy pool (never the sim RNG)."""
    return os.urandom(8).hex()


class Span:
    """One timed operation; context-manager use records errors."""

    __slots__ = (
        "span_id", "trace_id", "parent_id", "name", "campaign_id",
        "process", "started_at", "duration", "status", "attributes",
        "events", "_t0", "_collector",
    )

    def __init__(
        self,
        collector: "Collector",
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        attributes: Optional[dict] = None,
    ):
        self._collector = collector
        self.span_id = new_id()
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.attributes = dict(attributes or {})
        self.campaign_id = self.attributes.get("campaign_id")
        self.process = collector.process
        self.events: List[dict] = []
        self.status = "ok"
        # repro-lint: ok[R2] span-start epoch, stored/reported only: it
        # anchors the waterfall on the wall clock so spans from
        # different hosts line up; every duration and event offset is
        # computed from the perf_counter t0 below.
        self.started_at = time.time()
        self.duration: Optional[float] = None
        self._t0 = time.perf_counter()

    def set(self, **attributes) -> "Span":
        self.attributes.update(attributes)
        if "campaign_id" in attributes:
            self.campaign_id = attributes["campaign_id"]
        return self

    def event(self, name: str, **attributes) -> None:
        self.events.append({
            "name": name,
            "offset": time.perf_counter() - self._t0,
            **attributes,
        })

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("error", repr(exc))
        self._collector.end_span(self)
        return False

    def row(self) -> Tuple:
        return (
            self.span_id, self.trace_id, self.parent_id, self.name,
            self.campaign_id, self.process, self.started_at,
            self.duration, self.status,
            json.dumps(self.attributes, default=str, sort_keys=True),
            json.dumps(self.events, default=str),
        )


class Collector:
    """Per-process span sink writing the store-file ``spans`` table.

    ``remote_parent`` seats this process's root spans under a span
    started elsewhere (the coordinator's), keeping one connected tree
    per campaign across the fleet.
    """

    def __init__(
        self,
        db_path: str,
        trace_id: Optional[str] = None,
        remote_parent: Optional[str] = None,
        process: Optional[str] = None,
    ):
        self.db_path = str(db_path)
        self.trace_id = trace_id or new_id()
        self.remote_parent = remote_parent
        self.process = process or f"pid-{os.getpid()}"
        #: Owning pid: a forked child inheriting this collector must
        #: not use it (stale sqlite handle, wrong process name) — the
        #: module facade checks this and re-arms.
        self.pid = os.getpid()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._buffer: List[Tuple] = []
        self._conn: Optional[sqlite3.Connection] = None

    # -- span lifecycle -------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def root_id(self) -> Optional[str]:
        """Id of this thread's bottom-most open span (trace anchor)."""
        stack = self._stack()
        return stack[0].span_id if stack else self.remote_parent

    def start_span(self, name: str, attributes: Optional[dict] = None) -> Span:
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else self.remote_parent
        span = Span(self, name, self.trace_id, parent_id, attributes)
        if span.campaign_id is None and stack:
            span.campaign_id = stack[-1].campaign_id
        stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        span.duration = time.perf_counter() - span._t0
        stack = self._stack()
        if span in stack:
            del stack[stack.index(span):]
        with self._lock:
            self._buffer.append(span.row())
            drain = not stack or len(self._buffer) >= _FLUSH_THRESHOLD
        if drain:
            self.flush()

    def record(
        self,
        name: str,
        started_at: float,
        duration: float,
        parent_id: Optional[str],
        attributes: Optional[dict] = None,
        status: str = "ok",
    ) -> str:
        """Write an already-timed span (re-seated kernel phases)."""
        span = Span(self, name, self.trace_id, parent_id, attributes)
        span.started_at = started_at
        span.duration = duration
        span.status = status
        with self._lock:
            self._buffer.append(span.row())
        return span.span_id

    # -- persistence ----------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            conn = sqlite3.connect(
                self.db_path, timeout=30.0, check_same_thread=False,
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.executescript(_SCHEMA)
            conn.commit()
            self._conn = conn
        return self._conn

    def flush(self) -> None:
        with self._lock:
            rows, self._buffer = self._buffer, []
        if not rows:
            return
        conn = self._connect()
        with self._lock:
            conn.executemany(
                "INSERT OR REPLACE INTO spans VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
            conn.commit()

    def close(self) -> None:
        self.flush()
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None


# -- reading traces back ------------------------------------------------


def load_spans(
    db_path: str,
    campaign_id: Optional[str] = None,
    trace_id: Optional[str] = None,
) -> List[dict]:
    """Spans for one trace, as dicts, oldest first.

    With only a ``campaign_id``, picks that campaign's most recent
    trace (latest root ``started_at``).
    """
    conn = sqlite3.connect(db_path, timeout=30.0)
    conn.row_factory = sqlite3.Row
    try:
        tables = {
            row[0] for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        if "spans" not in tables:
            return []
        if trace_id is None and campaign_id is not None:
            row = conn.execute(
                "SELECT trace_id FROM spans WHERE campaign_id LIKE ? "
                "ORDER BY started_at DESC LIMIT 1",
                (campaign_id + "%",),
            ).fetchone()
            if row is None:
                return []
            trace_id = row["trace_id"]
        if trace_id is None:
            row = conn.execute(
                "SELECT trace_id FROM spans ORDER BY started_at DESC LIMIT 1"
            ).fetchone()
            if row is None:
                return []
            trace_id = row["trace_id"]
        rows = conn.execute(
            "SELECT * FROM spans WHERE trace_id = ? ORDER BY started_at",
            (trace_id,),
        ).fetchall()
    finally:
        conn.close()
    out = []
    for row in rows:
        span = dict(row)
        span["attributes"] = json.loads(span.get("attributes") or "{}")
        span["events"] = json.loads(span.get("events") or "[]")
        out.append(span)
    return out


def span_tree(spans: Sequence[dict]) -> List[dict]:
    """Nest spans by parent id; returns the list of roots.

    Spans whose parent never landed (a crashed process) surface as
    extra roots rather than disappearing.
    """
    by_id: Dict[str, dict] = {}
    for span in spans:
        node = dict(span)
        node["children"] = []
        by_id[node["span_id"]] = node
    roots: List[dict] = []
    for node in by_id.values():
        parent = by_id.get(node.get("parent_id") or "")
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    def start(node: dict) -> float:
        return node.get("started_at") or 0.0
    for node in by_id.values():
        node["children"].sort(key=start)
    roots.sort(key=start)
    return roots


def _end(node: dict) -> float:
    return (node.get("started_at") or 0.0) + (node.get("duration") or 0.0)


def critical_path(roots: Sequence[dict]) -> List[str]:
    """Span ids on the latest-finishing chain from root to leaf."""
    if not roots:
        return []
    node = max(roots, key=_end)
    path = [node["span_id"]]
    while node["children"]:
        node = max(node["children"], key=_end)
        path.append(node["span_id"])
    return path


def trace_payload(spans: Sequence[dict]) -> dict:
    """The ``GET /campaigns/{id}/trace`` body: tree + summary."""
    roots = span_tree(spans)
    processes = sorted({span["process"] for span in spans})
    campaigns = sorted({
        span["campaign_id"] for span in spans if span.get("campaign_id")
    })

    def strip(node: dict) -> dict:
        return {
            "span_id": node["span_id"],
            "parent_id": node.get("parent_id"),
            "name": node["name"],
            "process": node["process"],
            "started_at": node.get("started_at"),
            "duration": node.get("duration"),
            "status": node.get("status", "ok"),
            "attributes": node.get("attributes", {}),
            "events": node.get("events", []),
            "children": [strip(child) for child in node["children"]],
        }

    return {
        "trace_id": spans[0]["trace_id"] if spans else None,
        "campaign_ids": campaigns,
        "span_count": len(spans),
        "processes": processes,
        "critical_path": critical_path(roots),
        "roots": [strip(root) for root in roots],
    }


def render_trace(spans: Sequence[dict], width: int = 32) -> str:
    """Text waterfall: indent = depth, bar = when, ``*`` = critical path.

    Offsets are wall-clock relative to the earliest span and clamped
    at zero, so modest cross-host skew degrades the picture, not the
    renderer.
    """
    if not spans:
        return "(no spans)"
    roots = span_tree(spans)
    critical = set(critical_path(roots))
    t0 = min(span.get("started_at") or 0.0 for span in spans)
    t1 = max(_end(span) for span in spans)
    window = max(t1 - t0, 1e-9)
    lines = [
        f"trace {spans[0]['trace_id']} · {len(spans)} spans · "
        f"{len({s['process'] for s in spans})} processes · "
        f"{window:.3f}s wall window"
    ]

    def walk(node: dict, depth: int) -> None:
        offset = max((node.get("started_at") or t0) - t0, 0.0)
        duration = node.get("duration") or 0.0
        left = int(round(offset / window * width))
        bar_len = max(int(round(duration / window * width)), 1)
        left = min(left, width - 1)
        bar_len = min(bar_len, width - left)
        bar = " " * left + "▇" * bar_len
        mark = "*" if node["span_id"] in critical else " "
        status = "" if node.get("status") == "ok" else " !" + str(
            node.get("status"))
        label = "  " * depth + node["name"]
        lines.append(
            f"{mark}{label:<38.38} {offset:>8.3f}s {duration:>8.3f}s "
            f"|{bar:<{width}}|{status} [{node['process']}]"
        )
        for child in node["children"]:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    crit_time = sum(
        (span.get("duration") or 0.0)
        for span in spans if span["span_id"] in critical
    )
    lines.append(
        f"critical path: {len(critical)} spans, {crit_time:.3f}s summed"
    )
    return "\n".join(lines)
