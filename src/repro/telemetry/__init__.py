"""`repro.telemetry`: spans + metrics for campaigns, fleets, services.

Two halves, one doctrine (observable but never observable *in the
results*):

* **Tracing** — :func:`span` opens a span on the process-global
  :class:`~repro.telemetry.trace.Collector`.  Disarmed (the default)
  it returns a shared no-op object: no allocation beyond the kwargs
  dict, no clock reads, no locks — cheap enough to leave the hooks in
  the worker/queue/store seams permanently.  Arm with :func:`arm` (or
  the :func:`collect` context manager); child processes arm themselves
  from the queue job's ``trace`` metadata or the ``REPRO_TRACE`` env
  var, mirroring ``REPRO_FAULT_PLAN``'s lazy one-shot pickup.

* **Metrics** — every process owns :data:`REGISTRY` (workers keep a
  private registry so fallback in-process drains never double-count);
  see :mod:`repro.telemetry.metrics` for publication/aggregation.

Trace ids never enter :class:`CampaignSpec`: a traced campaign keeps
the bitwise-identical campaign id and results digest of its untraced
twin.  Span ids come from ``os.urandom``, not the seeded RNG.

Usage::

    from repro import telemetry

    with telemetry.collect("results.sqlite"):
        campaign.run(store=store)
    print(telemetry.render_trace(
        telemetry.load_spans("results.sqlite")))
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import Optional

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    REGISTRY,
    exposition,
    merge_samples,
)
from repro.telemetry.snapshot import assemble, scrape
from repro.telemetry.trace import (
    Collector,
    Span,
    critical_path,
    load_spans,
    new_id,
    render_trace,
    span_tree,
    trace_payload,
)

__all__ = [
    "Collector",
    "DEFAULT_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "TRACE_ENV",
    "arm",
    "armed",
    "assemble",
    "collect",
    "collector",
    "critical_path",
    "current_span",
    "disarm",
    "ensure",
    "event",
    "exposition",
    "load_spans",
    "merge_samples",
    "new_id",
    "render_trace",
    "scrape",
    "span",
    "span_tree",
    "trace_context",
    "trace_payload",
]

#: Env var carrying a JSON ``{"db", "trace_id", "parent_id"}`` trace
#: context into child processes (same pattern as ``REPRO_FAULT_PLAN``).
TRACE_ENV = "REPRO_TRACE"

_collector: Optional[Collector] = None
_env_checked = False


class _NoopSpan:
    """Shared do-nothing span for the disarmed path."""

    __slots__ = ()
    span_id = None
    trace_id = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes) -> "_NoopSpan":
        return self

    def event(self, name, **attributes) -> None:
        return None


_NOOP = _NoopSpan()


def _check_env() -> None:
    """One-shot ``REPRO_TRACE`` pickup (never re-read, like faults)."""
    global _collector, _env_checked
    _env_checked = True
    raw = os.environ.get(TRACE_ENV)
    if not raw:
        return
    try:
        ctx = json.loads(raw)
        _collector = Collector(
            ctx["db"],
            trace_id=ctx.get("trace_id"),
            remote_parent=ctx.get("parent_id"),
        )
    except (ValueError, KeyError, TypeError) as exc:  # pragma: no cover
        raise RuntimeError(f"invalid {TRACE_ENV}: {exc}") from exc


def collector() -> Optional[Collector]:
    """The armed collector, if any (checks the env exactly once).

    A collector inherited across ``fork`` is discarded (not closed —
    its sqlite handle and span buffer belong to the parent): the child
    re-arms from job metadata or ``REPRO_TRACE`` with its own identity.
    """
    global _collector
    if _collector is not None and _collector.pid != os.getpid():
        _collector = None
    if _collector is None and not _env_checked:
        _check_env()
    return _collector


def armed() -> bool:
    return collector() is not None


def arm(
    db_path: str,
    trace_id: Optional[str] = None,
    remote_parent: Optional[str] = None,
    process: Optional[str] = None,
) -> Collector:
    """Install a process-global collector writing spans to ``db_path``."""
    global _collector, _env_checked
    _env_checked = True
    if _collector is not None:
        _collector.close()
    _collector = Collector(
        db_path, trace_id=trace_id, remote_parent=remote_parent,
        process=process,
    )
    return _collector


def ensure(
    db_path: str,
    trace_id: str,
    remote_parent: Optional[str] = None,
    process: Optional[str] = None,
) -> Collector:
    """Arm for ``(db, trace)`` unless the current collector already is.

    The worker's entry point: jobs from different traced submissions
    re-seat the collector; repeated chunks of one job reuse it.
    """
    current = collector()
    if (
        current is not None
        and current.trace_id == trace_id
        and current.db_path == str(db_path)
    ):
        return current
    return arm(
        db_path, trace_id=trace_id, remote_parent=remote_parent,
        process=process,
    )


def disarm() -> None:
    """Flush and remove the collector; hooks return to no-op cost."""
    global _collector, _env_checked
    if _collector is not None:
        _collector.close()
    _collector = None
    _env_checked = True


@contextmanager
def collect(db_path: str, trace_id: Optional[str] = None):
    """Arm for the duration of a block, restoring the previous state."""
    global _collector, _env_checked
    previous, previous_checked = _collector, _env_checked
    _collector = Collector(db_path, trace_id=trace_id)
    _env_checked = True
    try:
        yield _collector
    finally:
        _collector.close()
        _collector, _env_checked = previous, previous_checked


def span(name: str, **attributes):
    """Open a span (context manager); free when no collector is armed."""
    c = _collector
    if c is None:
        if _env_checked:
            return _NOOP
        c = collector()
        if c is None:
            return _NOOP
    elif c.pid != os.getpid():
        c = collector()
        if c is None:
            return _NOOP
    return c.start_span(name, attributes or None)


def current_span():
    c = _collector
    if c is None or c.pid != os.getpid():
        return None
    return c.current()


def event(name: str, **attributes) -> None:
    """Attach an event to the current span, if one is open."""
    c = _collector
    if c is None or c.pid != os.getpid():
        return
    current = c.current()
    if current is not None:
        current.event(name, **attributes)


def trace_context() -> Optional[dict]:
    """Propagation payload for queue metadata / ``REPRO_TRACE``."""
    c = collector()
    if c is None:
        return None
    return {
        "db": c.db_path,
        "trace_id": c.trace_id,
        "parent_id": c.root_id(),
    }
