"""Process-local metrics registry with Prometheus text exposition.

Counters, gauges, and histograms keyed by ``(family, labels)``; each
process keeps its own :class:`MetricsRegistry` (workers deliberately
use a private one so in-process fallback drains never double-count
against the coordinator's).  Cross-process aggregation rides the same
transport as everything else in this repo — sqlite: a registry's
:meth:`~MetricsRegistry.flatten` output is JSON-published into the
queue's ``worker_metrics`` table and summed back by
``WorkQueue.fleet_metric_samples``; :func:`exposition` renders any
mix of local and published samples as valid Prometheus text.

Everything here is stdlib-only and thread-safe; the hot-path cost of
an ``inc``/``observe`` is one lock + dict update, and code that may
run with telemetry disarmed should hold the family object rather than
re-looking it up by name.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "REGISTRY",
    "exposition",
    "merge_samples",
]

#: Default histogram buckets (seconds) — spans chunk drains (~ms) to
#: whole-campaign waits (~minutes).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_KINDS = ("counter", "gauge", "histogram")


def _label_key(labels: Mapping[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: Sequence[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in labels
    )
    return "{" + inner + "}"


class MetricFamily:
    """One named metric with labelled series underneath.

    ``kind`` is one of ``counter`` / ``gauge`` / ``histogram``; the
    wrong mutator for the kind raises so instrumentation bugs fail
    loudly in tests instead of silently mis-reporting.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self._lock = threading.Lock()
        # label-key -> float, or for histograms -> [bucket_counts, sum, count]
        self._series: Dict[Tuple[Tuple[str, str], ...], object] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if self.kind != "counter":
            raise TypeError(f"{self.name} is a {self.kind}, not a counter")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def set(self, value: float, **labels: str) -> None:
        if self.kind != "gauge":
            raise TypeError(f"{self.name} is a {self.kind}, not a gauge")
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def observe(self, value: float, **labels: str) -> None:
        if self.kind != "histogram":
            raise TypeError(f"{self.name} is a {self.kind}, not a histogram")
        key = _label_key(labels)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = [[0] * len(self.buckets), 0.0, 0]
                self._series[key] = state
            counts, total, count = state
            # Per-bucket tallies; samples() cumulates once at render.
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            state[1] = total + float(value)
            state[2] = count + 1

    def value(self, **labels: str) -> float:
        """Current scalar value of one series (0 when never touched)."""
        key = _label_key(labels)
        with self._lock:
            state = self._series.get(key)
        if state is None:
            return 0.0
        if self.kind == "histogram":
            return float(state[2])  # observation count
        return float(state)

    def total(self) -> float:
        """Sum across all label series (histograms: total observations)."""
        with self._lock:
            states = list(self._series.values())
        if self.kind == "histogram":
            return float(sum(state[2] for state in states))
        return float(sum(states))

    def samples(self) -> List[dict]:
        """Flatten to transport-friendly sample dicts.

        Histograms expand to ``_bucket``/``_sum``/``_count`` samples so
        publication and merge logic never special-cases shapes.
        """
        out: List[dict] = []
        base = {"family": self.name, "kind": self.kind, "help": self.help}
        with self._lock:
            items = [(key, state) for key, state in self._series.items()]
        for key, state in items:
            labels = dict(key)
            if self.kind != "histogram":
                out.append(dict(
                    base, name=self.name, labels=labels, value=float(state),
                ))
                continue
            counts, total, count = state
            cumulative = 0
            for bound, bucket in zip(self.buckets, counts):
                cumulative += bucket
                out.append(dict(
                    base,
                    name=self.name + "_bucket",
                    labels=dict(labels, le=_format_value(bound)),
                    value=float(cumulative),
                ))
            out.append(dict(
                base,
                name=self.name + "_bucket",
                labels=dict(labels, le="+Inf"),
                value=float(count),
            ))
            out.append(dict(
                base, name=self.name + "_sum", labels=labels,
                value=float(total),
            ))
            out.append(dict(
                base, name=self.name + "_count", labels=labels,
                value=float(count),
            ))
        return out


class MetricsRegistry:
    """Get-or-create home for metric families in one process."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _get(
        self, name: str, kind: str, help: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            return family

    def counter(self, name: str, help: str = "") -> MetricFamily:
        return self._get(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        return self._get(name, "gauge", help)

    def histogram(
        self, name: str, help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._get(name, "histogram", help, buckets)

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[k] for k in sorted(self._families)]

    def flatten(self) -> List[dict]:
        """All samples from all families — the publication payload."""
        out: List[dict] = []
        for family in self.families():
            out.extend(family.samples())
        return out

    def exposition(self, extra_samples: Iterable[dict] = ()) -> str:
        return exposition(self.flatten() + list(extra_samples))


def merge_samples(*sample_sets: Iterable[dict]) -> List[dict]:
    """Sum same-named series across processes.

    Counters and flattened histogram components add; for gauges the
    last writer wins (publishers report point-in-time state, and the
    queue hands samples over in a stable order).
    """
    merged: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], dict] = {}
    for samples in sample_sets:
        for sample in samples:
            key = (sample["name"], _label_key(sample.get("labels", {})))
            found = merged.get(key)
            if found is None:
                merged[key] = dict(sample)
            elif sample.get("kind") == "gauge":
                found["value"] = sample["value"]
            else:
                found["value"] = found["value"] + sample["value"]
    return list(merged.values())


def exposition(samples: Iterable[dict]) -> str:
    """Render flattened samples as Prometheus text exposition 0.0.4.

    Groups by family (``# HELP`` / ``# TYPE`` emitted once), orders
    deterministically, and keeps histogram component samples adjacent.
    """
    by_family: Dict[str, List[dict]] = {}
    meta: Dict[str, Tuple[str, str]] = {}
    for sample in samples:
        family = sample.get("family") or sample["name"]
        by_family.setdefault(family, []).append(sample)
        if family not in meta:
            meta[family] = (
                sample.get("kind", "untyped"), sample.get("help", ""),
            )
    lines: List[str] = []
    for family in sorted(by_family):
        kind, help_text = meta[family]
        if help_text:
            lines.append(f"# HELP {family} {help_text}")
        lines.append(f"# TYPE {family} {kind}")
        rows = by_family[family]

        def sort_key(sample: dict) -> Tuple:
            labels = dict(sample.get("labels", {}))
            le = labels.pop("le", None)
            # keep each series' buckets in bound order, then _sum/_count
            suffix = {"_bucket": 0, "_sum": 1, "_count": 2}.get(
                sample["name"][len(family):], 0
            )
            le_rank = (
                float("inf") if le == "+Inf"
                else float(le) if le is not None else -1.0
            )
            return (_label_key(labels), suffix, le_rank, sample["name"])

        for sample in sorted(rows, key=sort_key):
            labels = _label_key(sample.get("labels", {}))
            lines.append(
                f"{sample['name']}{_render_labels(labels)} "
                f"{_format_value(sample['value'])}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


#: Process-default registry: the coordinator/service/supervisor side.
REGISTRY = MetricsRegistry()
