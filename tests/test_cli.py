"""Tests for the command-line interface.

Every command runs in-process through ``repro.cli.main`` with the fast
preset and a temporary cache, asserting on exit codes and output.
"""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def temp_cache(tmp_path, monkeypatch):
    """Point the table cache at a temp dir shared within one test."""
    import repro.acasx.cache as cache_module

    monkeypatch.setattr(cache_module, "DEFAULT_CACHE_DIR", tmp_path / "cache")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.preset == "test"
        assert args.seed == 0


class TestSolve:
    def test_solve_runs(self, capsys):
        assert main(["solve", "--preset", "test"]) == 0
        out = capsys.readouterr().out
        assert "solved: LogicTable" in out

    def test_solve_with_verification(self, capsys):
        assert main(["solve", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out

    def test_solve_saves_table(self, tmp_path, capsys):
        out_path = tmp_path / "table.npz"
        assert main(["solve", "--out", str(out_path)]) == 0
        assert out_path.exists()

    def test_cache_reused(self, capsys):
        main(["solve", "--verbose"])
        first = capsys.readouterr().out
        main(["solve", "--verbose"])
        second = capsys.readouterr().out
        assert "cached table" in first
        assert "loaded cached table" in second


class TestSimulate:
    @pytest.mark.parametrize("geometry", ["head-on", "tail", "random"])
    def test_geometries(self, geometry, capsys):
        assert main(["simulate", "--geometry", geometry, "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "NMAC:" in out

    def test_unequipped(self, capsys):
        assert main(
            ["simulate", "--geometry", "head-on", "--equipage", "none"]
        ) == 0
        out = capsys.readouterr().out
        assert "own alerted: False" in out

    def test_trace_rendering(self, capsys):
        assert main(["simulate", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "min sep" in out


class TestCampaign:
    def test_preset_campaign(self, capsys):
        assert main(["campaign", "--runs", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "campaign: 2 scenarios x 4 runs" in out
        assert "backend=vectorized" in out

    def test_agent_backend_and_exports(self, tmp_path, capsys):
        out_json = tmp_path / "campaign.json"
        out_csv = tmp_path / "campaign.csv"
        code = main(
            [
                "campaign",
                "--scenarios", "head_on",
                "--backend", "agent",
                "--runs", "2",
                "--out", str(out_json),
                "--csv", str(out_csv),
            ]
        )
        assert code == 0
        payload = json.loads(out_json.read_text())
        assert payload["backend"] == "agent"
        assert len(payload["scenarios"]) == 1
        assert out_csv.read_text().startswith("index,name,num_runs")

    def test_sampled_unequipped_campaign(self, capsys):
        code = main(
            [
                "campaign",
                "--sample", "3",
                "--equipage", "none",
                "--runs", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 scenarios x 2 runs" in out
        assert "equipage=none" in out

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--scenarios", "corkscrew"])

    def test_bad_numeric_flags_exit_cleanly(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--sample", "-2"])
        with pytest.raises(SystemExit):
            main(["campaign", "--workers", "0"])
        with pytest.raises(SystemExit):
            main(["campaign", "--sample", "2", "--scenarios", "head_on"])

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--backend", "quantum"])

    @pytest.mark.slow
    def test_workers_match_serial(self, capsys):
        argv = ["campaign", "--sample", "4", "--runs", "3", "--seed", "9"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        # Identical apart from the workers= label and wall time lines.
        strip = lambda text: [
            line for line in text.splitlines()
            if "workers=" not in line and "wall time" not in line
        ]
        assert strip(serial) == strip(parallel)


class TestCampaignStore:
    def test_store_resume_zero_simulations(self, tmp_path, capsys):
        argv = [
            "campaign", "--sample", "3", "--runs", "2", "--seed", "5",
            "--equipage", "none", "--store", str(tmp_path / "s.sqlite"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "simulated 3" in first
        # Identical spec: everything loads, nothing simulates.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "loaded 3, simulated 0" in second

    def test_store_list_show_export_diff(self, tmp_path, capsys):
        store_path = str(tmp_path / "s.sqlite")
        base = ["campaign", "--sample", "3", "--runs", "2", "--seed", "5",
                "--store", store_path]
        assert main(base + ["--equipage", "none"]) == 0
        assert main(base) == 0
        capsys.readouterr()

        assert main(["store", "list", store_path]) == 0
        listing = capsys.readouterr().out
        ids = [
            line.split()[0]
            for line in listing.splitlines()[1:]
            if line.strip()
        ]
        assert len(ids) == 2

        assert main(["store", "show", store_path, ids[0]]) == 0
        shown = capsys.readouterr().out
        assert "campaign:" in shown
        assert "complete" in shown

        out_json = tmp_path / "export.json"
        out_csv = tmp_path / "export.csv"
        assert main(["store", "export", store_path, ids[0],
                     "--out", str(out_json), "--csv", str(out_csv)]) == 0
        capsys.readouterr()
        payload = json.loads(out_json.read_text())
        assert len(payload["scenarios"]) == 3
        assert out_csv.read_text().startswith("index,name,num_runs")

        assert main(["store", "diff", store_path, ids[0], ids[1]]) == 0
        diff = capsys.readouterr().out
        assert "nmac_rate" in diff
        assert "paired scenarios: 3" in diff

    def test_store_unknown_campaign_exits_cleanly(self, tmp_path, capsys):
        store_path = str(tmp_path / "s.sqlite")
        assert main(["store", "list", store_path]) == 0
        with pytest.raises(SystemExit):
            main(["store", "show", store_path, "deadbeef"])
        with pytest.raises(SystemExit):
            main(["store", "export", store_path, "deadbeef"])

    def test_montecarlo_store_logs_both_arms(self, tmp_path, capsys):
        store_path = str(tmp_path / "s.sqlite")
        assert main(["montecarlo", "--encounters", "3", "--runs", "2",
                     "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "store [equipped]" in out
        assert "store [unequipped]" in out
        assert main(["store", "list", store_path]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 3


class TestSearch:
    def test_small_search_with_report(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main(
            [
                "search",
                "--population", "8",
                "--generations", "2",
                "--runs", "5",
                "--top", "3",
                "--out", str(report_path),
            ]
        )
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert len(payload["top_encounters"]) == 3
        assert len(payload["generation_summary"]) == 2
        assert len(payload["top_encounters"][0]["genome"]) == 9
        out = capsys.readouterr().out
        assert "geometry counts" in out

    def test_backend_flag_accepted(self, capsys):
        code = main(
            [
                "search",
                "--backend", "vectorized",
                "--equipage", "own-only",
                "--coordination", "off",
                "--population", "6",
                "--generations", "2",
                "--runs", "3",
                "--top", "2",
            ]
        )
        assert code == 0
        assert "top encounters" in capsys.readouterr().out


class TestMonteCarlo:
    def test_small_campaign(self, capsys):
        code = main(["montecarlo", "--encounters", "10", "--runs", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "risk ratio" in out

    @pytest.mark.slow
    def test_workers_match_serial(self, capsys):
        argv = ["montecarlo", "--encounters", "6", "--runs", "2"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel


class TestInspect:
    def test_action_map_printed(self, capsys):
        assert main(["inspect"]) == 0
        out = capsys.readouterr().out
        assert "alerting envelope" in out
        assert "h=" in out
        # The alerting glyphs must appear somewhere in the map.
        assert any(glyph in out for glyph in "cdCD")


class TestAirspace:
    def test_equipped_run(self, capsys):
        code = main(["airspace", "--aircraft", "4", "--duration", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "closest pair" in out

    def test_unequipped_run(self, capsys):
        code = main(
            ["airspace", "--aircraft", "3", "--duration", "30",
             "--equipage", "none"]
        )
        assert code == 0
        assert "alerted: 0.00" in capsys.readouterr().out


class TestMachineReadableViews:
    """--format json + pagination: the script/service-shared surface."""

    def _seed_store(self, tmp_path, capsys, campaigns=2):
        store_path = str(tmp_path / "s.sqlite")
        for seed in range(campaigns):
            assert main(["campaign", "--sample", "3", "--runs", "2",
                         "--seed", str(seed), "--equipage", "none",
                         "--store", store_path]) == 0
        capsys.readouterr()
        return store_path

    def test_store_list_json_and_pagination(self, tmp_path, capsys):
        store_path = self._seed_store(tmp_path, capsys)
        assert main(["store", "list", store_path, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 2
        assert {"campaign_id", "label", "complete", "num_scenarios",
                "scenarios_digest"} <= set(payload[0])

        assert main(["store", "list", store_path, "--format", "json",
                     "--limit", "1", "--offset", "1"]) == 0
        window = json.loads(capsys.readouterr().out)
        assert [c["campaign_id"] for c in window] == [
            payload[1]["campaign_id"]
        ]

    def test_store_records_pagination(self, tmp_path, capsys):
        store_path = self._seed_store(tmp_path, capsys, campaigns=1)
        assert main(["store", "records", store_path,
                     "--limit", "2", "--offset", "1"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["index"] for r in rows] == [1, 2]

    def test_status_json(self, tmp_path, capsys):
        store_path = str(tmp_path / "s.sqlite")
        queue_path = str(tmp_path / "q.sqlite")
        assert main(["submit", "--sample", "2", "--runs", "2",
                     "--equipage", "none", "--queue", queue_path,
                     "--store", store_path]) == 0
        capsys.readouterr()
        assert main(["status", queue_path, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["queue"] == queue_path
        assert len(payload["jobs"]) == 1
        job = payload["jobs"][0]
        assert job["num_scenarios"] == 2
        assert job["chunks"]["total"] >= 1
        assert job["complete"] is False  # nothing drained it yet

    def test_watchlist_command(self, tmp_path, capsys):
        store_path = self._seed_store(tmp_path, capsys, campaigns=1)
        assert main(["watchlist", store_path]) == 0
        brief = capsys.readouterr().out
        assert "watchlist brief" in brief
        assert "none pinned" in brief

        assert main(["watchlist", store_path, "--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["records_scanned"] == 3
        assert snapshot["alerts"] == []

        with pytest.raises(SystemExit):
            main(["watchlist", str(tmp_path / "missing.sqlite")])
        with pytest.raises(SystemExit):
            main(["watchlist", store_path, "--baseline", "deadbeef"])

    def test_watchlist_fail_on_alert_gates(self, tmp_path, capsys):
        store_path = self._seed_store(tmp_path, capsys, campaigns=1)
        ids = json.loads(
            (main(["store", "list", store_path, "--format", "json"]),
             capsys.readouterr().out)[1]
        )
        baseline = ids[0]["campaign_id"]
        # Only the baseline itself is stored: nothing can regress.
        assert main(["watchlist", store_path, "--baseline", baseline,
                     "--fail-on-alert"]) == 0
