"""Noise-tape megabatch kernel: bitwise equivalence and observability.

The tentpole refactor pre-draws every scenario's disturbance and sensor
noise into tapes and runs the decision/physics/observe phases on an
array-namespace seam.  These tests pin the contract down:

- the tape kernel is **bitwise identical** to the frozen pre-refactor
  implementation (:mod:`repro.sim.batch_reference`) and to the
  per-scenario :meth:`run` path, across every equipage × coordination ×
  substeps combination;
- chunking cannot change a single bit;
- the ``"vectorized-batch-gpu"`` backend degrades cleanly on a GPU-less
  host: it warns, runs the CPU kernel, and produces identical digests;
- :class:`~repro.sim.batch.KernelProfile` phase timings flow through
  ``Campaign.run(profile=True)`` into result-set (and store) metadata;
- the distributed fleet advertises backend/accelerator capabilities.
"""

import os
import warnings

import numpy as np
import pytest

from repro.distributed.queue import WorkQueue
from repro.distributed.worker import Worker, worker_capabilities
from repro.encounters import (
    StatisticalEncounterModel,
    head_on_encounter,
    tail_approach_encounter,
)
from repro.experiments import Campaign, available_backends, make_backend
from repro.experiments.backends import BackendSpec
from repro.experiments.campaign import _execute_chunk
from repro.sim.batch import KERNEL_PHASES, BatchEncounterSimulator, KernelProfile
from repro.sim.batch_reference import reference_run_many
from repro.sim.encounter import EncounterSimConfig
from repro.sim.xp import (
    NUMPY_NAMESPACE,
    accelerator_available,
    detect_accelerators,
    get_namespace,
)
from repro.store import ResultStore, results_digest

RESULT_FIELDS = (
    "min_separation",
    "min_horizontal",
    "nmac",
    "own_alerted",
    "intruder_alerted",
)


def assert_results_equal(a, b):
    for field in RESULT_FIELDS:
        np.testing.assert_array_equal(getattr(a, field), getattr(b, field))


@pytest.fixture(scope="module")
def mixed_durations():
    """Mixed-duration scenarios so the sorted active-lane prefix, the
    tape slicing, and the early-stop mask are all exercised."""
    model = StatisticalEncounterModel()
    sampled = model.sample(4, seed=np.random.default_rng(11))
    return sampled + [
        head_on_encounter(time_to_cpa=8.0),
        tail_approach_encounter(time_to_cpa=55.0),
    ]


# ----------------------------------------------------------------------
# Bitwise equivalence vs the frozen pre-refactor kernel
# ----------------------------------------------------------------------
class TestTapeKernelBitwise:
    @pytest.mark.parametrize("equipage", ["both", "own-only", "none"])
    @pytest.mark.parametrize("coordination", [True, False])
    @pytest.mark.parametrize("substeps", [1, 4])
    def test_matches_pre_refactor_reference(
        self, test_table, mixed_durations, equipage, coordination, substeps
    ):
        """Tape kernel == frozen inline-draw kernel, bit for bit."""
        sim = BatchEncounterSimulator(
            test_table if equipage != "none" else None,
            EncounterSimConfig(physics_substeps=substeps),
            equipage=equipage,
            coordination=coordination,
        )
        seeds = [1000 + i for i in range(len(mixed_durations))]
        new = sim.run_many(mixed_durations, 7, seeds)
        ref = reference_run_many(sim, mixed_durations, 7, seeds)
        for a, b in zip(new, ref):
            assert_results_equal(a, b)

    @pytest.mark.parametrize("equipage", ["both", "own-only"])
    def test_matches_per_scenario_run(
        self, test_table, mixed_durations, equipage
    ):
        """Every scenario's tape slice == its solo run() output."""
        sim = BatchEncounterSimulator(test_table, equipage=equipage)
        seeds = [77 + i for i in range(len(mixed_durations))]
        batch = sim.run_many(mixed_durations, 9, seeds)
        for params, seed, result in zip(mixed_durations, seeds, batch):
            assert_results_equal(result, sim.run(params, 9, seed))

    def test_chunk_invariance(self, test_table, mixed_durations):
        """Which scenarios share a batch cannot change any bit."""
        sim = BatchEncounterSimulator(test_table)
        seeds = [2000 + i for i in range(len(mixed_durations))]
        whole = sim.run_many(mixed_durations, 5, seeds)
        parts = sim.run_many(
            mixed_durations[:3], 5, seeds[:3]
        ) + sim.run_many(mixed_durations[3:], 5, seeds[3:])
        for a, b in zip(whole, parts):
            assert_results_equal(a, b)

    def test_explicit_numpy_namespace_is_default_path(
        self, test_table, mixed_durations
    ):
        """Passing the host namespace explicitly changes nothing."""
        sim = BatchEncounterSimulator(test_table)
        seeds = [9 + i for i in range(len(mixed_durations))]
        default = sim.run_many(mixed_durations, 4, seeds)
        explicit = sim.run_many(
            mixed_durations, 4, seeds, xp=NUMPY_NAMESPACE
        )
        for a, b in zip(default, explicit):
            assert_results_equal(a, b)


# ----------------------------------------------------------------------
# Array-namespace seam
# ----------------------------------------------------------------------
class TestArrayNamespace:
    def test_numpy_namespace(self):
        ns = get_namespace("numpy")
        assert ns.name == "numpy" and not ns.is_accelerated
        arr = np.arange(3.0)
        assert ns.asarray(arr) is arr
        np.testing.assert_array_equal(ns.to_numpy(arr), arr)
        ns.synchronize()  # no-op, must not raise

    def test_auto_falls_back_to_numpy_without_device(self):
        if accelerator_available():
            pytest.skip("host has a real accelerator")
        assert get_namespace("auto").name == "numpy"

    def test_explicit_cupy_raises_without_device(self):
        if accelerator_available():
            pytest.skip("host has a real accelerator")
        with pytest.raises(RuntimeError, match="cupy"):
            get_namespace("cupy")

    def test_jax_is_rejected_with_explanation(self):
        with pytest.raises(RuntimeError, match="immutable"):
            get_namespace("jax")

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError, match="unknown device"):
            get_namespace("tpu")

    def test_detection_report_covers_known_stacks(self):
        report = detect_accelerators()
        assert set(report) >= {"cupy", "jax"}
        assert all(isinstance(status, str) for status in report.values())


# ----------------------------------------------------------------------
# The "vectorized-batch-gpu" backend
# ----------------------------------------------------------------------
class TestGpuBackend:
    def test_registered(self):
        assert "vectorized-batch-gpu" in available_backends()

    def test_gpu_less_host_warns_and_matches_cpu_kernel(
        self, test_table, mixed_durations
    ):
        """No accelerator → warn once, run the CPU kernel, same bits."""
        if accelerator_available():
            pytest.skip("host has a real accelerator")
        with pytest.warns(RuntimeWarning, match="no usable accelerator"):
            gpu = make_backend("vectorized-batch-gpu", table=test_table)
        cpu = make_backend("vectorized-batch", table=test_table)
        assert gpu.provenance_name == "vectorized-batch"
        seeds = [31 + i for i in range(len(mixed_durations))]
        for a, b in zip(
            gpu.simulate_many(mixed_durations, 6, seeds),
            cpu.simulate_many(mixed_durations, 6, seeds),
        ):
            assert_results_equal(a, b)

    def test_campaign_digest_identical_to_cpu_backend(
        self, test_table, mixed_durations
    ):
        """Fallback campaigns share provenance AND content digest."""
        if accelerator_available():
            pytest.skip("host has a real accelerator")
        with pytest.warns(RuntimeWarning):
            gpu_camp = Campaign(
                mixed_durations, backend="vectorized-batch-gpu",
                table=test_table, runs_per_scenario=8,
            )
        cpu_camp = Campaign(
            mixed_durations, backend="vectorized-batch",
            table=test_table, runs_per_scenario=8,
        )
        assert gpu_camp.backend_name == "vectorized-batch"
        rs_gpu = gpu_camp.run(seed=21)
        rs_cpu = cpu_camp.run(seed=21)
        assert results_digest(rs_gpu) == results_digest(rs_cpu)
        assert rs_gpu.backend == rs_cpu.backend == "vectorized-batch"

    def test_spec_round_trip_carries_device(self, test_table):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            backend = make_backend(
                "vectorized-batch-gpu", table=test_table, device="auto"
            )
            spec = BackendSpec.capture(backend)
            assert spec.backend == "vectorized-batch-gpu"
            assert spec.device == "auto"
            rebuilt = spec.build()
        assert type(rebuilt).__name__ == "VectorizedBatchGpuBackend"
        assert rebuilt.device == "auto"

    def test_explicit_cupy_device_raises_without_hardware(self, test_table):
        if accelerator_available():
            pytest.skip("host has a real accelerator")
        with pytest.raises(RuntimeError, match="cupy"):
            make_backend(
                "vectorized-batch-gpu", table=test_table, device="cupy"
            )


# ----------------------------------------------------------------------
# Empty-tail short-circuit (fully-stored resume)
# ----------------------------------------------------------------------
class TestEmptyTail:
    def test_backend_short_circuits_empty_chunk(self, test_table):
        backend = make_backend("vectorized-batch", table=test_table)
        assert backend.simulate_many([], 5, []) == []

    def test_execute_chunk_short_circuits(self, test_table):
        backend = make_backend("vectorized-batch", table=test_table)
        assert _execute_chunk(backend, 5, []) == []

    def test_kernel_still_rejects_empty_batch(self, test_table):
        """The kernel-level raise stays: only the seam short-circuits."""
        sim = BatchEncounterSimulator(test_table)
        with pytest.raises(ValueError, match="at least one scenario"):
            sim.run_many([], 5, [])

    def test_fully_stored_resume_simulates_nothing(
        self, test_table, mixed_durations
    ):
        """A resume whose store already holds everything must not reach
        the kernel with an empty scenario tail."""
        campaign = Campaign(
            mixed_durations, backend="vectorized-batch",
            table=test_table, runs_per_scenario=6,
        )
        with ResultStore(":memory:") as store:
            first = campaign.run(seed=3, store=store)
            again = campaign.run(seed=3, store=store)
        assert first.metadata["simulated"] == len(mixed_durations)
        assert again.metadata["simulated"] == 0
        assert again.metadata["loaded"] == len(mixed_durations)
        assert results_digest(first) == results_digest(again)


# ----------------------------------------------------------------------
# Kernel profiling observability
# ----------------------------------------------------------------------
class TestKernelProfile:
    def test_profile_accumulates_phases(self, test_table, mixed_durations):
        sim = BatchEncounterSimulator(test_table)
        profile = KernelProfile()
        seeds = list(range(len(mixed_durations)))
        sim.run_many(mixed_durations, 5, seeds, profile=profile)
        assert profile.calls == 1
        assert profile.scenarios == len(mixed_durations)
        assert profile.lanes == len(mixed_durations) * 5
        assert profile.device == "numpy"
        assert profile.total > 0.0
        assert profile.transfer == 0.0  # host kernel never transfers
        sim.run_many(mixed_durations, 5, seeds, profile=profile)
        assert profile.calls == 2

    def test_to_dict_and_describe(self):
        profile = KernelProfile()
        payload = profile.to_dict()
        assert set(KERNEL_PHASES) <= set(payload)
        text = KernelProfile().describe()
        for phase in KERNEL_PHASES:
            assert phase in text

    def test_campaign_run_stamps_profile_metadata(
        self, test_table, mixed_durations
    ):
        campaign = Campaign(
            mixed_durations, backend="vectorized-batch",
            table=test_table, runs_per_scenario=5,
        )
        rs = campaign.run(seed=1, profile=True)
        payload = rs.metadata["kernel_profile"]
        assert set(KERNEL_PHASES) <= set(payload)
        assert payload["device"] == "numpy"
        assert payload["scenarios"] == len(mixed_durations)
        assert payload["total"] > 0.0

    def test_profile_does_not_change_bits(self, test_table, mixed_durations):
        campaign = Campaign(
            mixed_durations, backend="vectorized-batch",
            table=test_table, runs_per_scenario=5,
        )
        assert results_digest(
            campaign.run(seed=4, profile=True)
        ) == results_digest(campaign.run(seed=4))

    def test_multiworker_profile_is_honestly_unsupported(
        self, test_table, mixed_durations
    ):
        campaign = Campaign(
            mixed_durations, backend="vectorized-batch",
            table=test_table, runs_per_scenario=3,
        )
        rs = campaign.run(seed=1, workers=2, chunk_size=3, profile=True)
        assert "unsupported" in rs.metadata["kernel_profile"]

    def test_non_megabatch_backend_is_honestly_unsupported(
        self, test_table, mixed_durations
    ):
        campaign = Campaign(
            mixed_durations[:2], backend="vectorized",
            table=test_table, runs_per_scenario=3,
        )
        rs = campaign.run(seed=1, profile=True)
        assert "unsupported" in rs.metadata["kernel_profile"]

    def test_profile_persists_through_store_ingest(
        self, test_table, mixed_durations
    ):
        """The bench recording path (record_campaign → ingest) keeps
        the phase breakdown in the stored campaign's metadata."""
        campaign = Campaign(
            mixed_durations, backend="vectorized-batch",
            table=test_table, runs_per_scenario=4,
        )
        rs = campaign.run(seed=8, profile=True)
        with ResultStore(":memory:") as store:
            campaign_id = store.ingest(rs, label="profiled")
            info = [
                c for c in store.campaigns()
                if c.campaign_id == campaign_id
            ][0]
        stored = info.metadata["kernel_profile"]
        assert set(KERNEL_PHASES) <= set(stored)

    def test_single_cpu_caveat_tracks_cpu_count(
        self, test_table, mixed_durations, monkeypatch
    ):
        import repro.experiments.campaign as campaign_mod

        campaign = Campaign(
            mixed_durations[:2], backend="vectorized-batch",
            table=test_table, runs_per_scenario=3,
        )
        monkeypatch.setattr(campaign_mod.os, "cpu_count", lambda: 1)
        assert campaign.run(seed=1).metadata["single_cpu_caveat"] is True
        monkeypatch.setattr(campaign_mod.os, "cpu_count", lambda: 8)
        assert "single_cpu_caveat" not in campaign.run(seed=1).metadata


# ----------------------------------------------------------------------
# Fleet capability advertising
# ----------------------------------------------------------------------
class TestWorkerCapabilities:
    def test_worker_capabilities_shape(self):
        caps = worker_capabilities()
        assert "vectorized-batch-gpu" in caps["backends"]
        assert isinstance(caps["accelerated"], bool)
        assert set(caps["accelerators"]) >= {"cupy", "jax"}

    def test_advertise_and_read_back(self, tmp_path):
        path = tmp_path / "queue.sqlite"
        with WorkQueue(path) as queue:
            queue.advertise_capabilities(
                "w1", {"backends": ["vectorized-batch"], "accelerated": False}
            )
            rows = {w.worker_id: w for w in queue.workers()}
            assert rows["w1"].capabilities["accelerated"] is False
            assert rows["w1"].to_dict()["capabilities"]["backends"] == [
                "vectorized-batch"
            ]

    def test_capabilities_survive_heartbeats(self, tmp_path):
        path = tmp_path / "queue.sqlite"
        with WorkQueue(path) as queue:
            queue.advertise_capabilities("w1", {"accelerated": True})
            # A later liveness upsert (the claim path) must not wipe
            # the advertisement.
            queue._write(
                lambda: queue._heartbeat_worker("w1", None, queue.now() + 60)
            )
            (info,) = queue.live_workers(ttl=1e9)
            assert info.capabilities == {"accelerated": True}

    def test_old_queue_file_is_migrated(self, tmp_path):
        """A queue created before the capabilities column gains it."""
        import sqlite3

        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE workers ("
            " worker_id TEXT PRIMARY KEY, campaign_id TEXT,"
            " started_at REAL NOT NULL, heartbeat REAL NOT NULL)"
        )
        conn.execute(
            "INSERT INTO workers VALUES ('legacy', NULL, 1.0, 1.0)"
        )
        conn.commit()
        conn.close()
        with WorkQueue(path) as queue:
            rows = {w.worker_id: w for w in queue.workers()}
            assert rows["legacy"].capabilities is None
            queue.advertise_capabilities("legacy", {"accelerated": False})
            rows = {w.worker_id: w for w in queue.workers()}
            assert rows["legacy"].capabilities == {"accelerated": False}

    def test_worker_advertises_on_startup(self, tmp_path, monkeypatch):
        path = tmp_path / "queue.sqlite"
        # Keep the liveness row visible after the clean-exit cleanup so
        # the test can read the advertisement back.
        monkeypatch.setattr(
            WorkQueue, "deregister_worker", lambda self, worker_id: None
        )
        Worker(path, worker_id="w-adv").run(idle_timeout=0.0)
        with WorkQueue(path) as queue:
            rows = {w.worker_id: w for w in queue.workers()}
        caps = rows["w-adv"].capabilities
        assert caps is not None and "backends" in caps
