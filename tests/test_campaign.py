"""Tests for the unified `repro.experiments` campaign API.

Covers the scenario abstraction, the backend registry, deterministic
serial/parallel execution, agent-vs-vectorized equivalence at the
campaign level, the result exports, and the engine's minimum-duration
guarantee the campaign work surfaced.
"""

import json

import numpy as np
import pytest

from repro.dynamics.aircraft import AircraftState
from repro.encounters import (
    EncounterParameters,
    StatisticalEncounterModel,
    head_on_encounter,
    tail_approach_encounter,
)
from repro.experiments import (
    Campaign,
    ExplicitSource,
    GenomeSource,
    PresetSource,
    SampledSource,
    Scenario,
    as_scenario_source,
    available_backends,
    make_backend,
    preset_scenario,
)
from repro.sim import EncounterSimConfig, SimulationEngine, UavAgent
from repro.sim.disturbance import DisturbanceModel
from repro.sim.sensors import AdsBSensor


@pytest.fixture
def quiet_config():
    return EncounterSimConfig(
        disturbance=DisturbanceModel(
            vertical_rate_std=0.0, horizontal_accel_std=0.0
        ),
        sensor=AdsBSensor.noiseless(),
    )


class TestScenarioSources:
    def test_preset_scenario_spellings(self):
        a = preset_scenario("head_on")
        b = preset_scenario("head-on")
        assert a.params == b.params
        with pytest.raises(ValueError):
            preset_scenario("spiral-of-death")

    def test_preset_source(self):
        scenarios = PresetSource("head_on", "tail_approach").scenarios()
        assert [s.name for s in scenarios] == ["head_on", "tail_approach"]

    def test_explicit_source_mixes_forms(self):
        params = head_on_encounter()
        source = ExplicitSource(
            [
                params,
                "tail_approach",
                params.as_array(),
                ("named", tail_approach_encounter()),
                Scenario("wrapped", params),
            ]
        )
        scenarios = source.scenarios()
        assert len(scenarios) == 5
        assert scenarios[3].name == "named"
        assert scenarios[4].name == "wrapped"
        np.testing.assert_allclose(
            scenarios[2].genome, params.as_array()
        )

    def test_explicit_source_rejects_empty(self):
        with pytest.raises(ValueError):
            ExplicitSource([])

    def test_genome_source(self):
        genomes = np.stack(
            [head_on_encounter().as_array(),
             tail_approach_encounter().as_array()]
        )
        scenarios = GenomeSource(genomes).scenarios()
        assert len(scenarios) == 2
        np.testing.assert_allclose(scenarios[1].genome, genomes[1])

    def test_sampled_source_deterministic_per_seed(self):
        source = SampledSource(StatisticalEncounterModel(), 5)
        a = source.scenarios(seed=3)
        b = source.scenarios(seed=3)
        c = source.scenarios(seed=4)
        assert [s.params for s in a] == [s.params for s in b]
        assert [s.params for s in a] != [s.params for s in c]

    def test_sampled_source_validation(self):
        with pytest.raises(ValueError):
            SampledSource(StatisticalEncounterModel(), 0)
        with pytest.raises(TypeError):
            SampledSource(object(), 3)

    def test_as_scenario_source_coercions(self):
        assert len(as_scenario_source("head_on").scenarios()) == 1
        assert len(as_scenario_source(head_on_encounter()).scenarios()) == 1
        assert len(
            as_scenario_source(head_on_encounter().as_array()).scenarios()
        ) == 1
        two = np.stack([head_on_encounter().as_array()] * 2)
        assert len(as_scenario_source(two).scenarios()) == 2
        assert len(
            as_scenario_source(["head_on", tail_approach_encounter()])
            .scenarios()
        ) == 2
        source = SampledSource(StatisticalEncounterModel(), 2)
        assert as_scenario_source(source) is source

    def test_as_scenario_source_rejects_bare_model(self):
        with pytest.raises(TypeError, match="SampledSource"):
            as_scenario_source(StatisticalEncounterModel())


class TestBackendRegistry:
    def test_registry_contents(self):
        assert "agent" in available_backends()
        assert "vectorized" in available_backends()

    def test_unknown_backend_rejected(self, test_table):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("quantum", table=test_table)

    def test_equipped_backend_needs_table(self):
        for name in available_backends():
            with pytest.raises(ValueError):
                make_backend(name, table=None, equipage="both")

    def test_equipage_validated(self, test_table):
        with pytest.raises(ValueError, match="equipage"):
            make_backend("agent", table=test_table, equipage="intruder-only")

    def test_instance_passthrough(self, test_table):
        backend = make_backend("vectorized", table=test_table)
        assert make_backend(backend) is backend

    def test_false_alarm_fitness_arms_differ_for_instance_backend(
        self, test_table
    ):
        # A ready backend instance is pinned to one equipage; the
        # two-arm fitness must rebuild per arm from its registry key.
        from repro.search.fitness import FalseAlarmFitness

        backend = make_backend("vectorized", table=test_table)
        fitness = FalseAlarmFitness(test_table, num_runs=2, backend=backend)
        assert fitness._equipped is not fitness._unequipped
        assert fitness._unequipped.equipage == "none"

    def test_encounter_fitness_reuses_backend(self, test_table):
        from repro.search.fitness import EncounterFitness

        fitness = EncounterFitness(test_table, num_runs=2, seed=0)
        assert fitness.backend.name == "vectorized-batch"
        first = fitness.backend
        fitness(head_on_encounter().as_array())
        assert fitness.backend is first

    def test_backends_simulate_same_shape(self, test_table, tmp_path):
        for name in available_backends():
            # The fleet backend needs its queue/store paths; direct
            # simulate() calls on it execute in-process regardless.
            options = (
                {"queue": str(tmp_path / "q.sqlite"),
                 "store": str(tmp_path / "s.sqlite")}
                if name == "distributed"
                else {}
            )
            backend = make_backend(name, table=test_table, **options)
            result = backend.simulate(head_on_encounter(), 3, seed=0)
            assert result.num_runs == 3
            assert result.min_separation.shape == (3,)


class TestCampaignExecution:
    def test_serial_reproducible(self, test_table):
        def run():
            return Campaign(
                ["head_on", "tail_approach"],
                table=test_table,
                runs_per_scenario=6,
            ).run(seed=17)

        a, b = run(), run()
        np.testing.assert_array_equal(a.min_separations(), b.min_separations())
        assert a.nmac_count == b.nmac_count

    def test_agent_backend_campaign(self, test_table):
        results = Campaign(
            "head_on",
            backend="agent",
            table=test_table,
            runs_per_scenario=2,
        ).run(seed=0)
        assert results[0].num_runs == 2
        assert results.backend == "agent"

    def test_sampled_scenarios_derive_from_root_seed(self, test_table):
        def run(seed):
            return Campaign(
                SampledSource(StatisticalEncounterModel(), 3),
                table=test_table,
                runs_per_scenario=2,
            ).run(seed=seed)

        a, b, c = run(5), run(5), run(6)
        assert [r.params for r in a] == [r.params for r in b]
        assert [r.params for r in a] != [r.params for r in c]

    def test_validation(self, test_table):
        with pytest.raises(ValueError):
            Campaign("head_on", table=test_table, runs_per_scenario=0)
        campaign = Campaign("head_on", table=test_table, runs_per_scenario=2)
        with pytest.raises(ValueError):
            campaign.run(seed=0, workers=0)

    def test_workers_clamped_to_scenario_count(self, test_table):
        # One scenario can use at most one worker; the ResultSet must
        # record the count actually used, not the one requested.
        results = Campaign(
            "head_on", table=test_table, runs_per_scenario=2
        ).run(seed=0, workers=4)
        assert results.workers == 1

    @pytest.mark.slow
    def test_parallel_matches_serial_bitwise(self, test_table):
        def run(workers):
            # chunk_size=1 so all four workers are usable (the clamp
            # records the parallelism actually available, by chunks).
            return Campaign(
                SampledSource(StatisticalEncounterModel(), 6),
                table=test_table,
                runs_per_scenario=4,
            ).run(seed=2016, workers=workers, chunk_size=1)

        serial = run(1)
        parallel = run(4)
        assert serial.workers == 1 and parallel.workers == 4
        np.testing.assert_array_equal(
            serial.min_separations(), parallel.min_separations()
        )
        for a, b in zip(serial, parallel):
            assert a.name == b.name
            np.testing.assert_array_equal(a.runs.nmac, b.runs.nmac)
            np.testing.assert_array_equal(
                a.runs.own_alerted, b.runs.own_alerted
            )

    def test_backends_agree_exactly_without_noise(
        self, test_table, quiet_config
    ):
        # With all stochastic elements disabled the two backends must
        # produce identical trajectories run for run.
        def run(backend):
            return Campaign(
                ["head_on", "tail_approach"],
                backend=backend,
                table=test_table,
                runs_per_scenario=2,
                sim_config=quiet_config,
            ).run(seed=0)

        agent, vectorized = run("agent"), run("vectorized")
        np.testing.assert_allclose(
            agent.min_separations(),
            vectorized.min_separations(),
            rtol=1e-6,
        )
        assert agent.nmac_count == vectorized.nmac_count

    @pytest.mark.slow
    def test_backends_statistically_equivalent(self, test_table):
        # With noise on, per-run randomness differs between backends but
        # the reference encounter's outcome distribution must agree.
        def run(backend):
            return Campaign(
                tail_approach_encounter(overtake_speed=2.0),
                backend=backend,
                table=test_table,
                runs_per_scenario=40,
            ).run(seed=0)

        agent, vectorized = run("agent"), run("vectorized")
        a = agent.min_separations()
        v = vectorized.min_separations()
        pooled = np.sqrt((a.std() ** 2 + v.std() ** 2) / 2)
        assert abs(a.mean() - v.mean()) < max(3 * pooled, 20.0)


class TestResultSetExport:
    @pytest.fixture(scope="class")
    def results(self, test_table):
        return Campaign(
            ["head_on", "tail_approach"],
            table=test_table,
            runs_per_scenario=4,
        ).run(seed=1)

    def test_aggregates_consistent(self, results):
        assert results.total_runs == 8
        assert 0.0 <= results.nmac_rate <= 1.0
        assert results.worst() in list(results)
        assert len(results) == 2
        aggregates = results.aggregates()
        assert aggregates["scenarios"] == 2
        assert aggregates["wall_time"] >= 0.0

    def test_summary_text(self, results):
        text = results.summary()
        assert "campaign: 2 scenarios x 4 runs" in text
        assert "backend=vectorized-batch" in text
        assert "NMAC:" in text

    def test_json_roundtrip(self, results, tmp_path):
        path = results.to_json(tmp_path / "campaign.json")
        payload = json.loads(path.read_text())
        assert payload["backend"] == "vectorized-batch"
        assert len(payload["scenarios"]) == 2
        genome = payload["scenarios"][0]["genome"]
        decoded = EncounterParameters.from_array(np.array(genome))
        assert decoded == results[0].params

    def test_csv_export(self, results, tmp_path):
        path = results.to_csv(tmp_path / "campaign.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("index,name,num_runs,nmac_rate")
        assert len(lines) == 3


class TestEngineMinimumDuration:
    def _agent(self):
        from repro.avoidance import NoAvoidance
        from repro.util.rng import RngStream

        return UavAgent(
            name="own",
            state=AircraftState(
                position=np.zeros(3), velocity=np.array([10.0, 0.0, 0.0])
            ),
            avoidance=NoAvoidance(),
            disturbance=DisturbanceModel(
                vertical_rate_std=0.0, horizontal_accel_std=0.0
            ),
            rng=RngStream(0),
        )

    def test_short_duration_still_simulates(self):
        # duration < decision_dt/2 used to round to zero decision steps.
        engine = SimulationEngine([self._agent()], decision_dt=1.0)
        decisions = []
        end = engine.run(0.2, lambda t, agents: decisions.append(t))
        assert len(decisions) == 1
        assert end == pytest.approx(1.0)

    def test_long_duration_rounding_unchanged(self):
        engine = SimulationEngine([self._agent()], decision_dt=1.0)
        engine.run(10.4, lambda t, agents: None)
        assert engine.time == pytest.approx(10.0)

    def test_nonpositive_duration_still_rejected(self):
        engine = SimulationEngine([self._agent()], decision_dt=1.0)
        with pytest.raises(ValueError):
            engine.run(0.0, lambda t, agents: None)
