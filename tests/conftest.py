"""Shared fixtures.

The logic-table solve is the only expensive setup, so tables are built
once per session at two resolutions: ``tiny_table`` for controller and
lookup mechanics, ``test_table`` (the library's ``test_config``) for
behavioural and integration tests.
"""

from __future__ import annotations

import pytest

from repro.acasx import AcasConfig, build_logic_table, test_config


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="smoke mode: skip tests marked slow (multi-worker / "
        "long-running) so the tier-1 loop stays fast",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: multi-worker or long-running test (skipped under --smoke)",
    )


def pytest_collection_modifyitems(config, items):
    if not config.getoption("--smoke"):
        return
    skip_slow = pytest.mark.skip(reason="skipped in --smoke mode")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(scope="session")
def tiny_config() -> AcasConfig:
    """A minimal-resolution model configuration."""
    return AcasConfig(
        h_max=300.0,
        num_h=13,
        rate_max=13.0,
        num_rate=5,
        horizon=15,
    )


@pytest.fixture(scope="session")
def tiny_table(tiny_config):
    """A logic table solved on the minimal grid (fast)."""
    return build_logic_table(tiny_config)


@pytest.fixture(scope="session")
def test_table():
    """A logic table solved at the library's test preset."""
    return build_logic_table(test_config())
