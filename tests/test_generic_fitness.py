"""Tests for the algorithm-agnostic fitness path."""

import numpy as np
import pytest

from repro.avoidance import NoAvoidance, SelectiveVelocityObstacle
from repro.avoidance.acas import AcasXuAvoidance
from repro.encounters import head_on_encounter
from repro.search.fitness import COLLISION_GAIN, EncounterFitness
from repro.search.generic_fitness import GenericEncounterFitness


class TestGenericEncounterFitness:
    def test_unequipped_headon_scores_high(self):
        fitness = GenericEncounterFitness(
            pair_factory=lambda: (None, None), num_runs=5, seed=0
        )
        value = fitness(head_on_encounter().as_array())
        # Dead-on collision courses with no avoidance come very close.
        assert value > 50.0
        assert value <= COLLISION_GAIN

    def test_svo_reduces_fitness_on_headon(self):
        base = GenericEncounterFitness(
            pair_factory=lambda: (None, None), num_runs=5, seed=1
        )
        svo = GenericEncounterFitness(
            pair_factory=lambda: (
                SelectiveVelocityObstacle(),
                SelectiveVelocityObstacle(),
            ),
            num_runs=5,
            seed=1,
        )
        genome = head_on_encounter().as_array()
        assert svo(genome) < base(genome)

    def test_evaluation_counter(self):
        fitness = GenericEncounterFitness(
            pair_factory=lambda: (NoAvoidance(), NoAvoidance()),
            num_runs=2,
            seed=0,
        )
        genome = head_on_encounter().as_array()
        fitness(genome)
        fitness(genome)
        assert fitness.evaluations == 2

    def test_matches_batch_fitness_for_acas(self, test_table):
        # The generic (agent-engine) path and the vectorized batch path
        # must agree statistically on the same encounter.
        genome = head_on_encounter().as_array()
        runs = 40
        generic = GenericEncounterFitness(
            pair_factory=lambda: (
                AcasXuAvoidance(test_table, "own"),
                AcasXuAvoidance(test_table, "intr"),
            ),
            num_runs=runs,
            seed=3,
        )
        batch = EncounterFitness(test_table, num_runs=runs,
                                 coordination=False, seed=3)
        generic_seps = generic.min_separations(genome)
        batch_seps = batch.simulate(genome).min_separation
        pooled_se = np.sqrt(
            generic_seps.var() / runs + batch_seps.var() / runs
        )
        assert abs(generic_seps.mean() - batch_seps.mean()) < 4 * pooled_se + 1e-9

    def test_num_runs_validated(self):
        with pytest.raises(ValueError):
            GenericEncounterFitness(lambda: (None, None), num_runs=0)
