"""Integration tests for the agent-based encounter runner."""

import numpy as np
import pytest

from repro.avoidance import NoAvoidance, SelectiveVelocityObstacle
from repro.encounters import head_on_encounter, tail_approach_encounter
from repro.sim import EncounterSimConfig, run_encounter
from repro.sim.disturbance import DisturbanceModel
from repro.sim.encounter import make_acas_pair
from repro.sim.sensors import AdsBSensor


@pytest.fixture
def quiet_config():
    """No disturbance, no sensor noise: deterministic runs."""
    return EncounterSimConfig(
        disturbance=DisturbanceModel(vertical_rate_std=0.0),
        sensor=AdsBSensor.noiseless(),
    )


class TestUnequipped:
    def test_direct_hit_collides(self, quiet_config):
        result = run_encounter(
            head_on_encounter(), config=quiet_config, seed=0
        )
        assert result.nmac
        assert result.min_separation < 10.0

    def test_offset_encounter_misses(self, quiet_config):
        params = head_on_encounter(miss_distance=400.0, vertical_offset=80.0)
        result = run_encounter(params, config=quiet_config, seed=0)
        assert not result.nmac

    def test_deterministic_given_seed(self):
        config = EncounterSimConfig()
        a = run_encounter(head_on_encounter(), config=config, seed=7)
        b = run_encounter(head_on_encounter(), config=config, seed=7)
        assert a.min_separation == b.min_separation
        assert a.nmac == b.nmac

    def test_different_seeds_differ(self):
        config = EncounterSimConfig()
        a = run_encounter(head_on_encounter(), config=config, seed=1)
        b = run_encounter(head_on_encounter(), config=config, seed=2)
        assert a.min_separation != b.min_separation


class TestEquipped:
    def test_head_on_resolved(self, test_table, quiet_config):
        own, intruder = make_acas_pair(test_table)
        result = run_encounter(
            head_on_encounter(), own, intruder, quiet_config, seed=0
        )
        assert not result.nmac
        assert result.own_alerted or result.intruder_alerted

    def test_avoidance_improves_separation(self, test_table):
        config = EncounterSimConfig()
        params = head_on_encounter()
        base = np.mean(
            [
                run_encounter(params, config=config, seed=s).min_separation
                for s in range(10)
            ]
        )
        own, intruder = make_acas_pair(test_table)
        equipped = np.mean(
            [
                run_encounter(
                    params, own, intruder, config, seed=s
                ).min_separation
                for s in range(10)
            ]
        )
        assert equipped > base

    def test_trace_recorded_on_request(self, test_table, quiet_config):
        own, intruder = make_acas_pair(test_table)
        result = run_encounter(
            head_on_encounter(), own, intruder, quiet_config,
            seed=0, record_trace=True,
        )
        assert result.trace is not None
        assert len(result.trace) > 0
        advisories = set(result.trace.advisories_issued("own")) | set(
            result.trace.advisories_issued("intruder")
        )
        assert advisories - {"COC"}  # someone alerted

    def test_no_trace_by_default(self, test_table, quiet_config):
        own, intruder = make_acas_pair(test_table)
        result = run_encounter(
            head_on_encounter(), own, intruder, quiet_config, seed=0
        )
        assert result.trace is None

    def test_coordination_produces_complementary_maneuvers(
        self, test_table, quiet_config
    ):
        own, intruder = make_acas_pair(test_table, coordination=True)
        result = run_encounter(
            head_on_encounter(), own, intruder, quiet_config,
            seed=0, record_trace=True,
        )
        own_senses = {
            a for a in result.trace.advisories_issued("own")
            if a not in ("", "COC")
        }
        intr_senses = {
            a for a in result.trace.advisories_issued("intruder")
            if a not in ("", "COC")
        }
        up = {"CLIMB", "STRONG_CLIMB"}
        down = {"DESCEND", "STRONG_DESCEND"}
        if own_senses and intr_senses:
            # Coordinated aircraft never maneuver in the same sense.
            assert not (own_senses & up and intr_senses & up)
            assert not (own_senses & down and intr_senses & down)

    def test_tail_approach_can_defeat_logic(self, test_table):
        # The paper's challenging geometry produces NMACs at a rate
        # head-on encounters do not approach.
        config = EncounterSimConfig()
        params = tail_approach_encounter(
            overtake_speed=3.0, time_to_cpa=40.0,
            own_vertical_speed=-5.0, intruder_vertical_speed=5.0,
        )
        nmacs = 0
        for seed in range(20):
            own, intruder = make_acas_pair(test_table)
            result = run_encounter(params, own, intruder, config, seed=seed)
            nmacs += int(result.nmac)
        assert nmacs >= 1


class TestSvoInSimulation:
    def test_svo_improves_head_on(self, quiet_config):
        params = head_on_encounter()
        base = run_encounter(params, config=quiet_config, seed=0)
        svo_result = run_encounter(
            params,
            SelectiveVelocityObstacle(),
            SelectiveVelocityObstacle(),
            quiet_config,
            seed=0,
        )
        assert svo_result.min_separation > base.min_separation
        assert svo_result.own_alerted

    def test_svo_vs_unequipped_intruder(self, quiet_config):
        params = head_on_encounter()
        result = run_encounter(
            params, SelectiveVelocityObstacle(), NoAvoidance(),
            quiet_config, seed=0,
        )
        assert result.min_separation > 100.0
