"""Tests for repro.dynamics.aircraft — point-mass dynamics and CPA geometry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dynamics.aircraft import (
    AircraftState,
    VerticalRateCommand,
    cpa_horizontal_miss,
    relative_horizontal_speed,
    step_aircraft,
    time_to_cpa,
)
from repro.util.units import G


def state(x=0.0, y=0.0, z=0.0, vx=0.0, vy=0.0, vz=0.0):
    return AircraftState(np.array([x, y, z]), np.array([vx, vy, vz]))


class TestAircraftState:
    def test_accessors(self):
        s = state(1, 2, 3, 4, 5, 6)
        assert s.altitude == 3.0
        assert s.vertical_rate == 6.0

    def test_distances(self):
        a = state(0, 0, 0)
        b = state(3, 4, 12)
        assert a.horizontal_distance_to(b) == pytest.approx(5.0)
        assert a.vertical_distance_to(b) == pytest.approx(12.0)
        assert a.distance_to(b) == pytest.approx(13.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            AircraftState(np.zeros(2), np.zeros(3))

    def test_defensive_copies(self):
        position = np.zeros(3)
        s = AircraftState(position, np.zeros(3))
        position[0] = 99.0
        assert s.position[0] == 0.0


class TestStepAircraft:
    def test_straight_flight(self):
        s = step_aircraft(state(vx=10.0, vy=-2.0, vz=1.0), dt=2.0)
        np.testing.assert_allclose(s.position, [20.0, -4.0, 2.0])
        np.testing.assert_allclose(s.velocity, [10.0, -2.0, 1.0])

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            step_aircraft(state(), dt=0.0)

    def test_command_ramps_at_bounded_acceleration(self):
        cmd = VerticalRateCommand(target_rate=10.0, acceleration=2.0)
        s = step_aircraft(state(), dt=1.0, command=cmd)
        assert s.vertical_rate == pytest.approx(2.0)

    def test_command_captures_target_exactly(self):
        cmd = VerticalRateCommand(target_rate=1.0, acceleration=100.0)
        s = step_aircraft(state(), dt=1.0, command=cmd)
        assert s.vertical_rate == pytest.approx(1.0)

    def test_ramp_altitude_is_trapezoidal(self):
        # From rest to 4 m/s at 2 m/s^2 takes 2 s: altitude = 0.5*2*2^2 = 4 m.
        cmd = VerticalRateCommand(target_rate=4.0, acceleration=2.0)
        s = step_aircraft(state(), dt=2.0, command=cmd)
        assert s.altitude == pytest.approx(4.0)
        assert s.vertical_rate == pytest.approx(4.0)

    def test_capture_then_cruise(self):
        # 1 s ramp to 2 m/s then 1 s at 2 m/s: z = 1 + 2 = 3.
        cmd = VerticalRateCommand(target_rate=2.0, acceleration=2.0)
        s = step_aircraft(state(), dt=2.0, command=cmd)
        assert s.altitude == pytest.approx(3.0)

    def test_descend_command_symmetric(self):
        cmd = VerticalRateCommand(target_rate=-4.0, acceleration=2.0)
        s = step_aircraft(state(), dt=2.0, command=cmd)
        assert s.altitude == pytest.approx(-4.0)

    def test_vertical_noise_affects_rate_and_position(self):
        s = step_aircraft(state(), dt=1.0, vertical_accel_noise=1.0)
        assert s.vertical_rate == pytest.approx(1.0)
        assert s.altitude == pytest.approx(0.5)

    def test_horizontal_noise(self):
        s = step_aircraft(
            state(vx=1.0), dt=1.0, horizontal_accel_noise=np.array([2.0, 0.0])
        )
        assert s.velocity[0] == pytest.approx(3.0)
        assert s.position[0] == pytest.approx(2.0)

    def test_default_command_acceleration_is_quarter_g(self):
        assert VerticalRateCommand(1.0).acceleration == pytest.approx(G / 4)

    def test_command_validation(self):
        with pytest.raises(ValueError):
            VerticalRateCommand(1.0, acceleration=0.0)

    @settings(max_examples=30)
    @given(st.floats(-12, 12), st.floats(-12, 12), st.floats(0.1, 2.0))
    def test_rate_never_overshoots_target(self, vz0, target, dt):
        cmd = VerticalRateCommand(target_rate=target, acceleration=G / 4)
        s = step_aircraft(state(vz=vz0), dt=dt, command=cmd)
        lo, hi = min(vz0, target), max(vz0, target)
        assert lo - 1e-9 <= s.vertical_rate <= hi + 1e-9


class TestCpaGeometry:
    def test_head_on_time_to_cpa(self):
        own = state(vx=10.0)
        intruder = state(x=100.0, vx=-10.0)
        assert time_to_cpa(own, intruder) == pytest.approx(5.0)

    def test_diverging_gives_zero(self):
        own = state(vx=-10.0)
        intruder = state(x=100.0, vx=10.0)
        assert time_to_cpa(own, intruder) == 0.0

    def test_no_relative_motion_gives_zero(self):
        assert time_to_cpa(state(vx=5.0), state(x=50.0, vx=5.0)) == 0.0

    def test_miss_distance_offset_track(self):
        own = state(vx=10.0)
        intruder = state(x=100.0, y=30.0, vx=-10.0)
        assert cpa_horizontal_miss(own, intruder) == pytest.approx(30.0)

    def test_direct_hit_miss_is_zero(self):
        own = state(vx=10.0)
        intruder = state(x=100.0, vx=-10.0)
        assert cpa_horizontal_miss(own, intruder) == pytest.approx(0.0, abs=1e-9)

    def test_relative_horizontal_speed(self):
        assert relative_horizontal_speed(
            state(vx=10.0), state(vx=-10.0)
        ) == pytest.approx(20.0)

    @settings(max_examples=30)
    @given(st.floats(5, 50), st.floats(-300, 300), st.floats(5, 60))
    def test_cpa_is_a_minimum(self, speed, offset, range_x):
        # The separation at the reported CPA time is no larger than at
        # nearby times.
        own = state(vx=speed)
        intruder = state(x=range_x, y=offset, vx=-speed)
        t_star = time_to_cpa(own, intruder)

        def separation(t):
            rel = (intruder.position[:2] + intruder.velocity[:2] * t) - (
                own.position[:2] + own.velocity[:2] * t
            )
            return np.hypot(rel[0], rel[1])

        s_star = separation(t_star)
        assert s_star <= separation(t_star + 0.5) + 1e-9
        if t_star > 0.5:
            assert s_star <= separation(t_star - 0.5) + 1e-9
