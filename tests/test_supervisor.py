"""Tests for the self-healing fleet supervisor (`repro fleet`).

The supervisor's contract: crashed worker subprocesses are restarted
(their chunks reclaimed via lease expiry), a crash-looping slot gives
up after ``max_restarts`` crashes within ``restart_window`` instead of
burning CPU forever, one poisoned slot degrades the fleet rather than
stopping it, and only when *every* slot has given up with work still
queued does the run raise — naming the last worker's stderr.

Crash-loop and degradation mechanics run with cheap scripted
subprocesses via the ``command=`` seam; one ``slow`` test SIGKILLs a
real worker mid-campaign and asserts the healed fleet's results are
bitwise identical to the serial run.
"""

import signal
import sys
import threading
import time

import pytest

from repro.distributed import FleetSupervisor, WorkQueue
from repro.encounters import StatisticalEncounterModel
from repro.experiments import Campaign, SampledSource
from repro.store import ResultStore
from repro.store.spec import results_digest

SCENARIOS = 5
RUNS = 3
SEED = 11


def make_campaign(scenarios: int = SCENARIOS, **kwargs) -> Campaign:
    return Campaign(
        SampledSource(StatisticalEncounterModel(), scenarios),
        equipage="none",
        runs_per_scenario=RUNS,
        **kwargs,
    )


@pytest.fixture
def paths(tmp_path):
    return tmp_path / "queue.sqlite", tmp_path / "store.sqlite"


def crashing_command(message="boom", code=2):
    """A factory for subprocesses that write *message* and die."""

    def factory(slot, worker_id):
        return [
            sys.executable, "-c",
            f"import sys; sys.stderr.write({message!r}); sys.exit({code})",
        ]

    return factory


def sleeper_command(slot, worker_id):
    """A subprocess that never claims, never heartbeats, never exits."""
    return [sys.executable, "-c", "import time; time.sleep(600)"]


def submit_campaign(queue_path, store_path, chunk_size=1):
    campaign = make_campaign()
    run = campaign.submit(
        seed=SEED, queue=queue_path, store=store_path,
        chunk_size=chunk_size,
    )
    return campaign, run


class TestCrashLoop:
    def test_all_slots_crash_looping_gives_up_with_stderr(self, paths):
        queue_path, store_path = paths
        submit_campaign(queue_path, store_path)
        supervisor = FleetSupervisor(
            queue_path,
            workers=2,
            restart_backoff=0.01,
            max_restarts=3,
            restart_window=60.0,
            monitor_interval=0.01,
            command=crashing_command("boom: table file missing"),
        )
        with pytest.raises(RuntimeError) as excinfo:
            supervisor.run(timeout=30)
        message = str(excinfo.value)
        assert "fleet gave up" in message
        assert "boom: table file missing" in message
        # Each slot crashed max_restarts times, restarted in between.
        kinds = [event.kind for event in supervisor._events]
        assert kinds.count("gave-up") == 2
        assert kinds.count("crash") == 2 * 3
        assert kinds.count("restart") == 2 * (3 - 1)
        # No work was lost — every chunk is still queued for a
        # healthy fleet to pick up later.
        with WorkQueue(queue_path) as queue:
            tally = queue.chunk_counts(
                list(queue.counts().keys())[0]
            )
            assert tally.pending == SCENARIOS

    def test_empty_queue_drains_without_restarts(self, paths):
        queue_path, _ = paths
        with WorkQueue(queue_path):
            pass  # create the database; nothing queued
        report = FleetSupervisor(
            queue_path, workers=2, monitor_interval=0.01
        ).run(timeout=60)
        assert report.drained
        assert report.restarts == 0 and report.gave_up == 0
        assert "drained" in report.summary()

    def test_crash_of_an_idle_fleet_is_not_an_error(self, paths):
        # Workers crash-loop but the queue holds no work: give-up with
        # nothing queued is a degraded success, not a RuntimeError.
        queue_path, _ = paths
        with WorkQueue(queue_path):
            pass
        report = FleetSupervisor(
            queue_path,
            workers=1,
            restart_backoff=0.01,
            max_restarts=2,
            monitor_interval=0.01,
            command=crashing_command(),
        ).run(timeout=30)
        assert report.gave_up == 1
        assert report.drained  # vacuously: nothing was queued
        assert report.last_stderr == "boom"


class TestDegradation:
    def test_one_poisoned_slot_degrades_not_fails(self, paths):
        queue_path, store_path = paths
        campaign, run = submit_campaign(queue_path, store_path)
        serial = make_campaign().run(seed=SEED)
        supervisor = FleetSupervisor(
            queue_path,
            workers=2,
            lease_seconds=5.0,
            poll_interval=0.05,
            restart_backoff=0.01,
            max_restarts=2,
            monitor_interval=0.05,
        )
        default = supervisor._default_command

        def mixed(slot, worker_id):
            if slot == 0:
                return crashing_command("poisoned slot")(slot, worker_id)
            return default(slot, worker_id)

        supervisor._command = mixed
        report = supervisor.run(timeout=120)
        assert report.drained
        assert report.gave_up == 1  # slot 0 crash-looped out
        with ResultStore(store_path) as store:
            assert store.verify(campaign_id=run.campaign_id).ok
            final = store.resultset(run.campaign_id)
        assert results_digest(final) == results_digest(serial)


class TestStallDetection:
    def test_wedged_worker_is_killed_and_counted_as_crash(self, paths):
        queue_path, store_path = paths
        submit_campaign(queue_path, store_path)
        supervisor = FleetSupervisor(
            queue_path,
            workers=1,
            restart_backoff=0.01,
            max_restarts=2,
            stall_timeout=0.5,
            monitor_interval=0.05,
            command=sleeper_command,
        )
        with pytest.raises(RuntimeError, match="fleet gave up"):
            supervisor.run(timeout=30)
        kinds = [event.kind for event in supervisor._events]
        assert "stall-kill" in kinds

    def test_timeout_kills_the_fleet(self, paths):
        queue_path, store_path = paths
        submit_campaign(queue_path, store_path)
        supervisor = FleetSupervisor(
            queue_path,
            workers=1,
            monitor_interval=0.05,
            command=sleeper_command,
        )
        with pytest.raises(TimeoutError):
            supervisor.run(timeout=0.5)
        assert supervisor.pids() == {}  # nothing left running


@pytest.mark.slow
class TestRealFleet:
    def test_sigkilled_worker_is_replaced_and_results_bitwise(
        self, paths
    ):
        import os

        queue_path, store_path = paths
        campaign, run = submit_campaign(queue_path, store_path)
        serial = make_campaign().run(seed=SEED)
        supervisor = FleetSupervisor(
            queue_path,
            workers=2,
            campaign_id=run.campaign_id,
            lease_seconds=1.0,
            poll_interval=0.05,
            restart_backoff=0.05,
            monitor_interval=0.05,
        )
        outcome = {}

        def drive():
            outcome["report"] = supervisor.run(timeout=300)

        thread = threading.Thread(target=drive)
        thread.start()
        # Assassinate the first worker that comes up.
        deadline = time.time() + 60
        while not supervisor.pids() and time.time() < deadline:
            time.sleep(0.02)
        pids = supervisor.pids()
        assert pids, "no worker ever started"
        os.kill(next(iter(pids.values())), signal.SIGKILL)
        thread.join(timeout=300)
        assert not thread.is_alive()
        report = outcome["report"]
        assert report.drained
        assert report.restarts >= 1
        assert report.gave_up == 0
        with ResultStore(store_path) as store:
            assert store.verify(campaign_id=run.campaign_id).ok
            final = store.resultset(run.campaign_id)
        assert results_digest(final) == results_digest(serial)
