"""Tests for the GA, fitness, random search, runner and clustering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.encounters.generator import ParameterRanges, ScenarioGenerator
from repro.search.clustering import cluster_genomes
from repro.search.fitness import (
    COLLISION_GAIN,
    CollisionRateFitness,
    EncounterFitness,
    paper_fitness,
)
from repro.search.ga import GAConfig, GeneticAlgorithm
from repro.search.random_search import random_search
from repro.search.runner import SearchRunner
from repro.sim.encounter import EncounterSimConfig


class TestPaperFitness:
    def test_collision_gains_maximum(self):
        assert paper_fitness(np.array([0.0])) == pytest.approx(COLLISION_GAIN)

    def test_formula(self):
        # Paper Sec. VII: fitness = mean(10000 / (1 + d_k)).
        d = np.array([0.0, 99.0, 9999.0])
        expected = np.mean(10_000.0 / (1.0 + d))
        assert paper_fitness(d) == pytest.approx(expected)

    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=50))
    def test_bounded_and_positive(self, distances):
        value = paper_fitness(np.array(distances))
        assert 0.0 < value <= COLLISION_GAIN

    def test_monotone_in_distance(self):
        # Closer encounters always score higher.
        near = paper_fitness(np.array([10.0]))
        far = paper_fitness(np.array([100.0]))
        assert near > far


class TestEncounterFitness:
    def test_tail_scores_higher_than_headon(self, test_table):
        from repro.encounters import head_on_encounter, tail_approach_encounter

        fitness = EncounterFitness(test_table, num_runs=20, seed=0)
        tail = fitness(
            tail_approach_encounter(
                overtake_speed=3.0, time_to_cpa=40.0,
                own_vertical_speed=-5.0, intruder_vertical_speed=5.0,
            ).as_array()
        )
        head_on = fitness(head_on_encounter().as_array())
        assert tail > head_on

    def test_report_fields(self, test_table):
        from repro.encounters import head_on_encounter

        fitness = EncounterFitness(test_table, num_runs=10, seed=0)
        report = fitness.report(head_on_encounter().as_array())
        assert report.fitness > 0
        assert 0.0 <= report.nmac_rate <= 1.0
        assert report.mean_min_separation > 0
        assert 0.0 <= report.alert_rate <= 1.0

    def test_evaluations_counted(self, test_table):
        from repro.encounters import head_on_encounter

        fitness = EncounterFitness(test_table, num_runs=5, seed=0)
        fitness(head_on_encounter().as_array())
        fitness(head_on_encounter().as_array())
        assert fitness.evaluations == 2

    def test_collision_rate_variant(self, test_table):
        from repro.encounters import head_on_encounter

        fitness = CollisionRateFitness(test_table, num_runs=10, seed=0)
        value = fitness(head_on_encounter().as_array())
        assert 0.0 <= value <= 1.0

    def test_num_runs_validated(self, test_table):
        with pytest.raises(ValueError):
            EncounterFitness(test_table, num_runs=0)


def sphere_fitness(genome: np.ndarray) -> float:
    """Analytic test fitness: maximized at the range midpoint."""
    ranges = ParameterRanges()
    mid = (ranges.lows() + ranges.highs()) / 2.0
    widths = ranges.highs() - ranges.lows()
    z = (genome - mid) / widths
    return float(-np.sum(z * z))


class TestGeneticAlgorithm:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            GAConfig(population_size=1)
        with pytest.raises(ValueError):
            GAConfig(generations=0)
        with pytest.raises(ValueError):
            GAConfig(elitism=10, population_size=10)
        with pytest.raises(ValueError):
            GAConfig(crossover_rate=1.5)

    def test_improves_on_analytic_function(self):
        ranges = ParameterRanges()
        ga = GeneticAlgorithm(
            ranges, GAConfig(population_size=30, generations=8)
        )
        result = ga.run(sphere_fitness, seed=0)
        first_gen_best = result.fitness_history[0].max()
        assert result.best_fitness > first_gen_best

    def test_mean_fitness_rises(self):
        ranges = ParameterRanges()
        ga = GeneticAlgorithm(
            ranges, GAConfig(population_size=40, generations=6)
        )
        result = ga.run(sphere_fitness, seed=1)
        means = [f.mean() for f in result.fitness_history]
        assert means[-1] > means[0]

    def test_population_stays_in_ranges(self):
        ranges = ParameterRanges()
        ga = GeneticAlgorithm(
            ranges, GAConfig(population_size=20, generations=4)
        )
        result = ga.run(sphere_fitness, seed=2)
        for population in result.generations:
            assert np.all(population >= ranges.lows() - 1e-9)
            assert np.all(population <= ranges.highs() + 1e-9)

    def test_elitism_preserves_best(self):
        ranges = ParameterRanges()
        ga = GeneticAlgorithm(
            ranges, GAConfig(population_size=20, generations=5, elitism=2)
        )
        result = ga.run(sphere_fitness, seed=3)
        best_per_gen = [f.max() for f in result.fitness_history]
        # With a deterministic fitness and elitism, the per-generation
        # best never decreases.
        assert all(
            b2 >= b1 - 1e-12 for b1, b2 in zip(best_per_gen, best_per_gen[1:])
        )

    def test_deterministic_given_seed(self):
        ranges = ParameterRanges()
        ga = GeneticAlgorithm(ranges, GAConfig(population_size=10, generations=3))
        a = ga.run(sphere_fitness, seed=9)
        b = ga.run(sphere_fitness, seed=9)
        np.testing.assert_array_equal(a.best_genome, b.best_genome)
        assert a.best_fitness == b.best_fitness

    def test_evaluation_count(self):
        ranges = ParameterRanges()
        config = GAConfig(population_size=15, generations=4)
        result = GeneticAlgorithm(ranges, config).run(sphere_fitness, seed=0)
        assert result.evaluations == 60
        genomes, fitnesses = result.all_evaluated()
        assert genomes.shape == (60, 9)
        assert fitnesses.shape == (60,)

    def test_callback_invoked(self):
        seen = []
        ranges = ParameterRanges()
        ga = GeneticAlgorithm(ranges, GAConfig(population_size=8, generations=3))
        ga.run(sphere_fitness, seed=0,
               callback=lambda g, pop, fit: seen.append(g))
        assert seen == [0, 1, 2]

    def test_generation_summary(self):
        ranges = ParameterRanges()
        ga = GeneticAlgorithm(ranges, GAConfig(population_size=8, generations=2))
        result = ga.run(sphere_fitness, seed=0)
        summary = result.generation_summary()
        assert len(summary) == 2
        assert summary[0]["min"] <= summary[0]["mean"] <= summary[0]["max"]


class TestRandomSearch:
    def test_budget_respected(self):
        result = random_search(ParameterRanges(), sphere_fitness, budget=25, seed=0)
        assert result.evaluations == 25

    def test_best_is_argmax(self):
        result = random_search(ParameterRanges(), sphere_fitness, budget=40, seed=1)
        assert result.best_fitness == pytest.approx(result.fitnesses.max())

    def test_target_hit_index(self):
        result = random_search(
            ParameterRanges(), sphere_fitness, budget=50, seed=2,
            target_fitness=-1e9,  # trivially reached immediately
        )
        assert result.first_hit_index == 0

    def test_target_never_hit(self):
        result = random_search(
            ParameterRanges(), sphere_fitness, budget=10, seed=3,
            target_fitness=1.0,  # sphere_fitness is always <= 0
        )
        assert result.first_hit_index is None

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            random_search(ParameterRanges(), sphere_fitness, budget=0)

    def test_ga_beats_random_on_structured_fitness(self):
        # Equal budget: the GA exploits structure random search cannot.
        ranges = ParameterRanges()
        budget = 120
        ga = GeneticAlgorithm(
            ranges, GAConfig(population_size=20, generations=6)
        )
        ga_result = ga.run(sphere_fitness, seed=4)
        rs_result = random_search(ranges, sphere_fitness, budget=budget, seed=4)
        assert ga_result.evaluations == budget
        assert ga_result.best_fitness > rs_result.best_fitness


class TestSearchRunner:
    def test_end_to_end_search(self, test_table):
        runner = SearchRunner(
            test_table,
            ga_config=GAConfig(population_size=10, generations=2),
            num_runs=5,
        )
        outcome = runner.run(seed=0, top_k=5)
        assert len(outcome.top_encounters) == 5
        assert outcome.ga_result.evaluations == 20
        summary = outcome.generation_summary()
        assert len(summary) == 2
        counts = outcome.geometry_counts()
        assert sum(counts.values()) == 5

    def test_top_encounters_sorted(self, test_table):
        runner = SearchRunner(
            test_table,
            ga_config=GAConfig(population_size=10, generations=2),
            num_runs=5,
        )
        outcome = runner.run(seed=1, top_k=4)
        fits = [e.fitness for e in outcome.top_encounters]
        assert fits == sorted(fits, reverse=True)

    def test_ranked_encounter_decodes(self, test_table):
        runner = SearchRunner(
            test_table,
            ga_config=GAConfig(population_size=8, generations=2),
            num_runs=5,
        )
        outcome = runner.run(seed=2, top_k=3)
        top = outcome.top_encounters[0]
        assert top.parameters.time_to_cpa > 0
        assert top.geometry in ("head-on", "tail-approach", "crossing")


class TestClustering:
    def test_recovers_planted_clusters(self):
        rng = np.random.default_rng(0)
        ranges = ParameterRanges()
        lows, highs = ranges.lows(), ranges.highs()
        center_a = lows + 0.2 * (highs - lows)
        center_b = lows + 0.8 * (highs - lows)
        cloud_a = center_a + rng.normal(0, 0.01, size=(30, 9)) * (highs - lows)
        cloud_b = center_b + rng.normal(0, 0.01, size=(30, 9)) * (highs - lows)
        genomes = np.vstack([cloud_a, cloud_b])
        result = cluster_genomes(genomes, k=2, ranges=ranges, seed=0)
        assert result.k == 2
        # Each planted cloud maps to one label.
        labels_a = set(result.labels[:30].tolist())
        labels_b = set(result.labels[30:].tolist())
        assert len(labels_a) == 1 and len(labels_b) == 1
        assert labels_a != labels_b
        assert result.sizes.sum() == 60

    def test_k_validation(self):
        genomes = ScenarioGenerator().random_genomes(5, seed=0)
        with pytest.raises(ValueError):
            cluster_genomes(genomes, k=0)
        with pytest.raises(ValueError):
            cluster_genomes(genomes, k=6)

    def test_single_cluster_center_is_mean(self):
        ranges = ParameterRanges()
        genomes = ScenarioGenerator(ranges).random_genomes(20, seed=1)
        result = cluster_genomes(genomes, k=1, ranges=ranges, seed=0)
        np.testing.assert_allclose(
            result.centers[0], genomes.mean(axis=0), rtol=1e-6
        )

    def test_describe_names_parameters(self):
        genomes = ScenarioGenerator().random_genomes(10, seed=2)
        result = cluster_genomes(genomes, k=2, seed=0)
        description = result.describe()
        assert len(description) == 2
        assert "time_to_cpa" in description[0]

    def test_center_parameters_decodable(self):
        genomes = ScenarioGenerator().random_genomes(10, seed=3)
        result = cluster_genomes(genomes, k=2, seed=0)
        params = result.center_parameters(0)
        assert params.time_to_cpa > 0
