"""Tests for the Monte-Carlo validation estimator."""

import pytest

from repro.encounters import StatisticalEncounterModel
from repro.montecarlo import MonteCarloEstimator
from repro.sim.encounter import EncounterSimConfig


@pytest.fixture(scope="module")
def report(test_table):
    estimator = MonteCarloEstimator(
        test_table,
        StatisticalEncounterModel(),
        sim_config=EncounterSimConfig(),
        runs_per_encounter=8,
    )
    return estimator.estimate(num_encounters=40, seed=0)


class TestEstimator:
    def test_validation(self, test_table):
        source = StatisticalEncounterModel()
        with pytest.raises(ValueError):
            MonteCarloEstimator(test_table, source, runs_per_encounter=0)
        estimator = MonteCarloEstimator(test_table, source)
        with pytest.raises(ValueError):
            estimator.estimate(0)

    def test_report_dimensions(self, report):
        assert report.encounters == 40
        assert report.runs_per_encounter == 8
        assert report.equipped_nmac.trials == 320
        assert report.unequipped_nmac.trials == 320

    def test_system_reduces_risk(self, report):
        # The generated logic must beat doing nothing on encounters
        # drawn from the statistical model (the paper's acceptance
        # criterion for a "good model").
        assert report.equipped_nmac.rate < report.unequipped_nmac.rate
        assert report.risk_ratio < 1.0

    def test_unequipped_encounters_are_dangerous(self, report):
        # The statistical model concentrates on conflict geometries, so
        # the unmitigated NMAC rate must be substantial.
        assert report.unequipped_nmac.rate > 0.2

    def test_rates_have_sane_intervals(self, report):
        for estimate in (report.equipped_nmac, report.unequipped_nmac):
            assert 0.0 <= estimate.low <= estimate.rate <= estimate.high <= 1.0

    def test_alert_rate_positive(self, report):
        assert 0.0 < report.alert_rate <= 1.0

    def test_false_alarm_rate_bounded(self, report):
        assert 0.0 <= report.false_alarm_rate <= 1.0

    def test_summary_text(self, report):
        text = report.summary()
        assert "risk ratio" in text
        assert "equipped NMAC rate" in text

    def test_deterministic_given_seed(self, test_table):
        estimator = MonteCarloEstimator(
            test_table,
            StatisticalEncounterModel(),
            runs_per_encounter=4,
        )
        a = estimator.estimate(10, seed=5)
        b = estimator.estimate(10, seed=5)
        assert a.equipped_nmac.rate == b.equipped_nmac.rate
        assert a.unequipped_nmac.rate == b.unequipped_nmac.rate
