"""Tests for logic-table caching."""

import numpy as np
import pytest

from repro.acasx.cache import build_or_load, cache_path, config_fingerprint
from repro.acasx.config import AcasConfig


@pytest.fixture
def small_config():
    return AcasConfig(num_h=7, num_rate=3, horizon=4)


class TestFingerprint:
    def test_stable(self, small_config):
        assert config_fingerprint(small_config) == config_fingerprint(
            AcasConfig(num_h=7, num_rate=3, horizon=4)
        )

    def test_sensitive_to_every_parameter(self, small_config):
        base = config_fingerprint(small_config)
        assert config_fingerprint(
            AcasConfig(num_h=7, num_rate=3, horizon=5)
        ) != base
        assert config_fingerprint(
            AcasConfig(num_h=7, num_rate=3, horizon=4, alert_cost=11.0)
        ) != base
        assert config_fingerprint(
            AcasConfig(num_h=7, num_rate=3, horizon=4,
                       own_noise=((0.0, 1.0),))
        ) != base


class TestBuildOrLoad:
    def test_miss_then_hit(self, small_config, tmp_path):
        path = cache_path(small_config, tmp_path)
        assert not path.exists()
        first = build_or_load(small_config, cache_dir=tmp_path)
        assert path.exists()
        second = build_or_load(small_config, cache_dir=tmp_path)
        np.testing.assert_array_equal(first.q, second.q)

    def test_corrupt_cache_rebuilt(self, small_config, tmp_path):
        path = cache_path(small_config, tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an npz file")
        table = build_or_load(small_config, cache_dir=tmp_path)
        assert table.config == small_config
        # The rebuild overwrote the corrupt entry with a loadable one.
        reloaded = build_or_load(small_config, cache_dir=tmp_path)
        np.testing.assert_array_equal(table.q, reloaded.q)

    def test_different_configs_different_files(self, tmp_path):
        a = AcasConfig(num_h=7, num_rate=3, horizon=4)
        b = AcasConfig(num_h=7, num_rate=3, horizon=5)
        assert cache_path(a, tmp_path) != cache_path(b, tmp_path)
