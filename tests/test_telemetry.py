"""Tests for `repro.telemetry`: tracing, metrics, and the front door.

The two acceptance criteria of the subsystem:

- a traced fleet campaign yields **one connected span tree** spanning
  the coordinator and both worker processes (>= 3 processes), while
  the campaign id and results digest stay **bitwise identical** to an
  untraced serial twin;
- disarmed telemetry is cheap enough to leave permanently in the hot
  seams (< 2% of a 50x100 megabatch campaign).
"""

import json
import multiprocessing
import time

import pytest

from repro import telemetry
from repro.distributed import WorkQueue, submit
from repro.encounters import StatisticalEncounterModel
from repro.experiments import Campaign, SampledSource
from repro.service import CampaignService, Watchlist, make_app
from repro.service.testing import ServiceClient
from repro.store import ResultStore
from repro.store.spec import results_digest
from repro.telemetry.metrics import MetricsRegistry, merge_samples
from repro.telemetry.snapshot import scrape

RUNS = 3
SEED = 11


def make_campaign(scenarios: int = 4, **kwargs) -> Campaign:
    return Campaign(
        SampledSource(StatisticalEncounterModel(), scenarios),
        equipage="none",
        runs_per_scenario=RUNS,
        **kwargs,
    )


@pytest.fixture
def paths(tmp_path):
    return tmp_path / "queue.sqlite", tmp_path / "store.sqlite"


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with telemetry disarmed."""
    telemetry.disarm()
    yield
    telemetry.disarm()


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "a counter")
        counter.inc(outcome="ok")
        counter.inc(2, outcome="ok")
        counter.inc(outcome="bad")
        assert counter.value(outcome="ok") == 3
        assert counter.total() == 4
        gauge = registry.gauge("g", "a gauge")
        gauge.set(7)
        gauge.set(5)
        assert gauge.value() == 5
        hist = registry.histogram("h_seconds", "a histogram")
        hist.observe(0.003)
        hist.observe(0.02)
        hist.observe(99.0)
        assert hist.value() == 3

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")
        with pytest.raises(TypeError):
            registry.counter("x_total").set(1)

    def test_exposition_is_valid_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help text").inc(kind='we"ird\n')
        registry.histogram("h_seconds", "latency").observe(0.02)
        text = registry.exposition()
        assert "# HELP c_total help text" in text
        assert "# TYPE c_total counter" in text
        assert "# TYPE h_seconds histogram" in text
        assert '\\"' in text and "\\n" in text  # label escaping
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_count 1" in text
        assert text.endswith("\n")
        # Buckets are cumulative and monotone non-decreasing.
        buckets = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("h_seconds_bucket")
        ]
        assert buckets == sorted(buckets)
        assert buckets[-1] == 1.0

    def test_merge_sums_counters_across_processes(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for registry, amount in ((a, 2), (b, 3)):
            registry.counter("c_total").inc(amount, outcome="done")
            registry.gauge("g").set(amount)
        merged = {
            (s["name"], tuple(sorted(s["labels"].items()))): s["value"]
            for s in merge_samples(a.flatten(), b.flatten())
        }
        assert merged[("c_total", (("outcome", "done"),))] == 5
        assert merged[("g", ())] == 3  # gauges: last writer wins


# ----------------------------------------------------------------------
# Span tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_disarmed_span_is_noop(self):
        span = telemetry.span("anything", key="value")
        assert span.span_id is None
        with span as inner:
            inner.set(more="attrs")
            inner.event("nothing")

    def test_nesting_error_persist_and_tree(self, tmp_path):
        db = str(tmp_path / "spans.sqlite")
        with telemetry.collect(db):
            with telemetry.span("root", campaign_id="cafe01"):
                with telemetry.span("child"):
                    telemetry.event("tick", n=1)
                with pytest.raises(RuntimeError):
                    with telemetry.span("broken"):
                        raise RuntimeError("boom")
        spans = telemetry.load_spans(db, campaign_id="cafe01")
        assert {s["name"] for s in spans} == {"root", "child", "broken"}
        by_name = {s["name"]: s for s in spans}
        root = by_name["root"]
        assert root["parent_id"] is None
        assert by_name["child"]["parent_id"] == root["span_id"]
        # children inherit campaign_id from the enclosing span
        assert by_name["child"]["campaign_id"] == "cafe01"
        assert by_name["broken"]["status"] == "error"
        assert by_name["child"]["events"][0]["name"] == "tick"
        roots = telemetry.span_tree(spans)
        assert len(roots) == 1
        assert len(roots[0]["children"]) == 2
        path = telemetry.critical_path(roots)
        assert path[0] == root["span_id"]
        rendered = telemetry.render_trace(spans)
        assert "root" in rendered and "critical path" in rendered

    def test_traced_serial_run_identical_to_untraced(self, tmp_path):
        store_a = str(tmp_path / "a.sqlite")
        store_b = str(tmp_path / "b.sqlite")
        with ResultStore(store_a) as store:
            plain = make_campaign().run(seed=SEED, store=store)
        with telemetry.collect(store_b):
            with ResultStore(store_b) as store:
                traced = make_campaign().run(seed=SEED, store=store)
        assert (
            plain.metadata["campaign_id"] == traced.metadata["campaign_id"]
        )
        assert results_digest(plain) == results_digest(traced)
        spans = telemetry.load_spans(
            store_b, campaign_id=traced.metadata["campaign_id"]
        )
        assert any(s["name"] == "campaign.run" for s in spans)


# ----------------------------------------------------------------------
# Cross-process fleet tracing (the tentpole acceptance test)
# ----------------------------------------------------------------------
class TestFleetTracing:
    @pytest.mark.slow
    def test_fleet_trace_connected_across_processes_and_bitwise(
        self, paths
    ):
        queue_path, store_path = paths
        serial = make_campaign(6).run(seed=SEED)

        with telemetry.collect(str(store_path), trace_id="feed1234"):
            run = submit(
                make_campaign(6), SEED,
                queue=queue_path, store=store_path, chunk_size=1,
            )
            # Two real worker processes, each capped at 3 chunks so
            # both *must* participate to drain the 6 chunks.
            workers = [
                multiprocessing.Process(
                    target=_traced_fleet_member, args=(str(queue_path),)
                )
                for _ in range(2)
            ]
            for process in workers:
                process.start()
            for process in workers:
                process.join(timeout=60)
            final = run.wait(timeout=30, poll=0.05)
            assert final.complete
            collected = run.collect()

        # Bitwise identity: tracing must not perturb the results.
        assert run.campaign_id == serial.metadata.get(
            "campaign_id", run.campaign_id
        )
        assert results_digest(serial) == results_digest(collected)

        spans = telemetry.load_spans(str(store_path), trace_id="feed1234")
        processes = {s["process"] for s in spans}
        assert len(processes) >= 3, processes  # coordinator + 2 workers

        by_id = {s["span_id"]: s for s in spans}
        chunk_spans = [s for s in spans if s["name"] == "worker.chunk"]
        drain_spans = [s for s in spans if s["name"] == "worker.drain"]
        assert len(chunk_spans) == 6
        assert len(drain_spans) == 6
        root = next(s for s in spans if s["name"] == "campaign.submit")
        assert root["parent_id"] is None
        # One connected tree: every span walks up to the submit root.
        for span in spans:
            node = span
            hops = 0
            while node["parent_id"] is not None:
                assert node["parent_id"] in by_id, (
                    f"{node['name']} has a dangling parent"
                )
                node = by_id[node["parent_id"]]
                hops += 1
                assert hops < 32
            assert node["span_id"] == root["span_id"], (
                f"{span['name']} not connected to the submit root"
            )
        # Both endpoints agree on the tree.
        payload = telemetry.trace_payload(spans)
        assert payload["span_count"] == len(spans)
        assert len(payload["roots"]) == 1
        assert len(payload["critical_path"]) >= 2

    @pytest.mark.slow
    def test_worker_metrics_aggregate_through_queue(self, paths):
        queue_path, store_path = paths
        run = submit(
            make_campaign(4), SEED,
            queue=queue_path, store=store_path, chunk_size=1,
        )
        from repro.distributed import run_workers

        run_workers(queue_path, num_workers=2, lease_seconds=10,
                    poll_interval=0.02)
        assert run.wait(timeout=30, poll=0.05).complete
        with WorkQueue(queue_path) as queue:
            samples = queue.fleet_metric_samples()
        by_key = {
            (s["name"], tuple(sorted(s["labels"].items()))): s["value"]
            for s in samples
        }
        assert by_key[
            ("repro_worker_chunks_total", (("outcome", "done"),))
        ] == 4
        assert by_key[
            ("repro_worker_records_total", (("outcome", "written"),))
        ] == 4
        text = scrape(
            registry=MetricsRegistry(),  # empty local side
            queue_path=str(queue_path), store_path=str(store_path),
        )
        assert 'repro_queue_chunks{status="done"} 4' in text
        assert "repro_store_records 4" in text
        assert 'repro_worker_chunks_total{outcome="done"} 4' in text


# ----------------------------------------------------------------------
# Overhead guard
# ----------------------------------------------------------------------
class TestOverhead:
    @pytest.mark.slow
    def test_disarmed_overhead_under_two_percent(self):
        campaign = Campaign(
            SampledSource(StatisticalEncounterModel(), 50),
            equipage="none",
            runs_per_scenario=100,
        )
        start = time.perf_counter()
        campaign.run(seed=SEED)
        wall = time.perf_counter() - start

        # A run of this shape opens ~51 spans (one per chunk plus the
        # run envelope); measure 5k disarmed hook calls — two orders of
        # magnitude more than reality — and demand they still fit in
        # the 2% budget.
        assert not telemetry.armed()
        start = time.perf_counter()
        for _ in range(5_000):
            with telemetry.span("noop", campaign_id="x"):
                pass
        hook_cost = time.perf_counter() - start
        assert hook_cost < 0.02 * wall, (
            f"5k disarmed spans took {hook_cost:.4f}s "
            f"vs campaign wall {wall:.4f}s"
        )


# ----------------------------------------------------------------------
# Service front door
# ----------------------------------------------------------------------
class TestServiceFrontDoor:
    def _client(self, tmp_path, arm: bool = False):
        store_path = str(tmp_path / "svc.sqlite")
        service = CampaignService(store_path)
        if arm:
            telemetry.arm(store_path, process="service-test")
        app = make_app(service, watchlist=Watchlist(service.store))
        return ServiceClient(app), service, store_path

    def test_metrics_endpoint_prometheus_text(self, tmp_path):
        client, service, _ = self._client(tmp_path)
        with service:
            assert client.get("/healthz").status == 200
            response = client.get("/metrics")
            assert response.status == 200
            text = response.text
            assert "# TYPE repro_http_requests_total counter" in text
            assert 'route="healthz"' in text
            assert "# TYPE repro_http_request_seconds histogram" in text
            assert "repro_store_campaigns 0" in text
            assert "repro_uptime_seconds" in text

    def test_healthz_carries_metrics_snapshot(self, tmp_path):
        client, service, _ = self._client(tmp_path)
        with service:
            body = client.get("/healthz").json()
            body = client.get("/healthz").json()
            assert body["status"] == "ok"
            assert body["uptime_seconds"] >= 0
            assert body["requests_total"] >= 1
            assert body["submissions_total"] == 0
            assert body["live_workers"] is None  # no queue configured
            assert "scans" in body["watchlist"]

    def test_submit_then_trace_endpoint(self, tmp_path):
        client, service, store_path = self._client(tmp_path, arm=True)
        with service:
            spec = {
                "scenarios": {"sample": 3},
                "equipage": "none",
                "runs": RUNS,
                "seed": SEED,
                "wait": True,
                "timeout": 60,
            }
            receipt = client.post("/campaigns", spec).json()
            campaign_id = receipt["campaign_id"]
            assert receipt["progress"]["complete"]
            telemetry.collector().flush()

            payload = client.get(f"/campaigns/{campaign_id}/trace").json()
            assert payload["campaign_id"] == campaign_id
            assert payload["span_count"] >= 1
            names = set()

            def walk(nodes):
                for node in nodes:
                    names.add(node["name"])
                    walk(node["children"])

            walk(payload["roots"])
            assert "service.request" in names or "campaign.run" in names

            assert client.get("/campaigns/zzzz/trace").status == 404

            text = client.get("/metrics").text
            assert 'repro_service_submissions_total{mode="inline"} 1' in text

    def test_trace_endpoint_memory_store_empty(self):
        service = CampaignService()  # :memory:
        client = ServiceClient(make_app(service))
        with service:
            spec = {
                "scenarios": {"sample": 2},
                "equipage": "none",
                "runs": 2,
                "wait": True,
            }
            receipt = client.post("/campaigns", spec).json()
            payload = client.get(
                f"/campaigns/{receipt['campaign_id']}/trace"
            ).json()
            assert payload["span_count"] == 0


# ----------------------------------------------------------------------
# Watchlist / supervisor instrumentation
# ----------------------------------------------------------------------
class TestSatellites:
    def test_watchlist_scan_counter_moves(self, tmp_path):
        with ResultStore(str(tmp_path / "s.sqlite")) as store:
            watchlist = Watchlist(store)
            before = telemetry.REGISTRY.counter(
                "repro_watchlist_scans_total"
            ).value(outcome="ok")
            watchlist.refresh()
            after = telemetry.REGISTRY.counter(
                "repro_watchlist_scans_total"
            ).value(outcome="ok")
        assert after == before + 1

    def test_fleet_report_tail(self):
        from repro.distributed.supervisor import FleetReport, WorkerEvent

        report = FleetReport(
            workers=1, restarts=3, gave_up=0, drained=True,
            wall_time=1.0,
            events=[
                WorkerEvent(kind="restart", slot=0, worker_id=f"w{i}")
                for i in range(12)
            ],
        )
        tail = report.tail(limit=8)
        assert len(tail) == 8
        assert tail[-1] == "[slot 0] w11: restart"


def _traced_fleet_member(queue_path: str) -> None:
    """A fleet worker capped at 3 chunks (forces both to take part)."""
    from repro.distributed import Worker

    Worker(queue_path, lease_seconds=10, poll_interval=0.02).run(
        max_chunks=3, idle_timeout=5.0
    )
