"""repro.lint: the contract linter's own contract.

Every rule is demonstrated on fixture snippets catching a seeded
violation (positive) and passing the conforming idiom (negative);
suppressions, scoping, the ratcheting baseline, the JSON schema and the
CLI exit codes are pinned; and the final test runs the linter over the
*real* ``src/`` + ``benchmarks/`` trees — the standing acceptance
criterion that the codebase itself stays clean.

Fixture files are written under a tmp tree mirroring the repo layout
(``src/repro/...``, ``benchmarks/...``) because rule scoping matches on
the path relative to the lint root.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    ALL_RULES,
    EXIT_CLEAN,
    EXIT_CONFIG,
    EXIT_FINDINGS,
    EXIT_STALE_BASELINE,
    RULES_BY_ID,
    compare,
    lint_paths,
    load_baseline,
    rules_for,
    write_baseline,
)
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_source(
    tmp_path: Path,
    source: str,
    relpath: str = "src/repro/fixture.py",
    rules=None,
):
    """Write *source* at *relpath* under a tmp root and lint it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return lint_paths(
        [target],
        tmp_path,
        rules if rules is not None else ALL_RULES,
        known_rules=set(RULES_BY_ID),
    )


def rule_ids(result):
    return [finding.rule for finding in result.findings]


# ---------------------------------------------------------------------------
# R1 seeded-rng
# ---------------------------------------------------------------------------

def test_r1_flags_global_numpy_and_stdlib_draws(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import numpy as np
        import random

        def bad(n):
            values = np.random.rand(n)
            np.random.seed(0)
            pick = random.randint(0, 3)
            return values, pick
        """,
    )
    assert rule_ids(result) == ["R1", "R1", "R1"]
    assert "hidden global NumPy" in result.findings[0].message


def test_r1_resolves_aliased_imports(tmp_path):
    # The aliasing the issue names explicitly: `import numpy as np` and
    # `from <module> import <name>` must both resolve.
    result = lint_source(
        tmp_path,
        """
        from numpy.random import rand
        from random import randint as pick

        def bad():
            return rand(3), pick(0, 9)
        """,
    )
    assert rule_ids(result) == ["R1", "R1"]


def test_r1_allows_seeded_generators(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import numpy as np
        from random import Random

        def good(seed):
            rng = np.random.default_rng(seed)
            seq = np.random.SeedSequence(seed)
            gen = np.random.Generator(np.random.PCG64(seed))
            stream = Random(seed)
            return rng.normal(), seq, gen, stream.random()
        """,
    )
    assert result.findings == []


def test_r1_urandom_only_in_telemetry(tmp_path):
    source = """
    import os

    def ids():
        return os.urandom(8).hex()
    """
    flagged = lint_source(tmp_path, source, "src/repro/sim/ids.py")
    assert rule_ids(flagged) == ["R1"]
    allowed = lint_source(tmp_path, source, "src/repro/telemetry/ids.py")
    assert allowed.findings == []


def test_r1_applies_to_benchmarks_but_not_tests(tmp_path):
    source = """
    import numpy as np

    def load():
        return np.random.rand(4)
    """
    bench = lint_source(tmp_path, source, "benchmarks/bench_fixture.py")
    assert rule_ids(bench) == ["R1"]
    tests = lint_source(tmp_path, source, "tests/test_fixture.py")
    assert tests.findings == []
    assert tests.files_checked == 0  # out of every rule's scope


# ---------------------------------------------------------------------------
# R2 monotonic-durations
# ---------------------------------------------------------------------------

def test_r2_flags_wall_clock_subtraction_and_deadlines(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import time

        def bad_duration(work):
            start = time.time()
            work()
            return time.time() - start

        def bad_deadline(poll, timeout):
            deadline = time.time() + timeout
            while time.time() < deadline:
                poll()
        """,
    )
    assert rule_ids(result) == ["R2", "R2"]
    assert "monotonic" in result.findings[0].message


def test_r2_resolves_from_time_import_time(tmp_path):
    result = lint_source(
        tmp_path,
        """
        from time import time

        def bad(t0):
            return time() - t0
        """,
    )
    assert rule_ids(result) == ["R2"]


def test_r2_flags_escaping_values_and_clock_closures(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import time

        def escapes(log):
            stamp = time.time()
            log(stamp)

        def closure():
            return lambda: time.time()
        """,
    )
    assert rule_ids(result) == ["R2", "R2"]
    assert "closure" in result.findings[1].message


def test_r2_allows_timestamps_and_monotonic_math(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import time

        class Span:
            def __init__(self):
                self.started_at = time.time()   # stored timestamp: fine
                self._t0 = time.perf_counter()

            def duration(self):
                return time.perf_counter() - self._t0

        def snapshot():
            return {"generated_at": time.time()}  # reported: fine
        """,
    )
    assert result.findings == []


# ---------------------------------------------------------------------------
# R3 fault-seam hygiene
# ---------------------------------------------------------------------------

def test_r3_flags_bare_and_baseexception_handlers(tmp_path):
    source = """
    def swallow(run):
        try:
            run()
        except BaseException:
            pass

    def bare(run):
        try:
            run()
        except:
            pass
    """
    result = lint_source(tmp_path, source, "src/repro/distributed/seam.py")
    assert rule_ids(result) == ["R3", "R3"]
    assert "InjectedWorkerCrash" in result.findings[0].message


def test_r3_scoped_to_fault_seam_layers(tmp_path):
    source = """
    def swallow(run):
        try:
            run()
        except BaseException:
            pass
    """
    # The sim layer predates the fault seams and is out of R3 scope.
    result = lint_source(tmp_path, source, "src/repro/sim/outside.py")
    assert result.findings == []
    for layer in ("distributed", "store", "service"):
        result = lint_source(tmp_path, source, f"src/repro/{layer}/in_scope.py")
        assert rule_ids(result) == ["R3"], layer


def test_r3_allows_except_exception(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def tolerate(run):
            try:
                run()
            except Exception:
                pass
        """,
        "src/repro/service/tolerant.py",
    )
    assert result.findings == []


# ---------------------------------------------------------------------------
# R4 store/queue lock discipline
# ---------------------------------------------------------------------------

R4_CLASS = """
import sqlite3
import threading


class Store:
    def __init__(self, path):
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path)

    def _write(self, fn):
        return fn()

    def locked_read(self):
        with self._lock:
            return self._conn.execute("SELECT 1").fetchone()

    def wrapped_write(self, value):
        def txn():
            self._conn.execute("INSERT INTO t VALUES (?)", (value,))
        return self._write(txn)

    def lambda_write(self, value):
        return self._write(lambda: self._conn.execute("DELETE FROM t"))

    def naked(self):
        return self._conn.execute("SELECT 2").fetchone()
"""


def test_r4_flags_unprotected_conn_access(tmp_path):
    result = lint_source(tmp_path, R4_CLASS, "src/repro/store/store.py")
    assert rule_ids(result) == ["R4"]
    assert "naked()" in result.findings[0].message
    # Same class in a file outside the discipline's scope: clean.
    outside = lint_source(tmp_path, R4_CLASS, "src/repro/store/spec.py")
    assert outside.findings == []


def test_r4_queue_file_in_scope(tmp_path):
    result = lint_source(tmp_path, R4_CLASS, "src/repro/distributed/queue.py")
    assert rule_ids(result) == ["R4"]


def test_r4_closure_not_handed_to_write_is_flagged(tmp_path):
    result = lint_source(
        tmp_path,
        """
        class Store:
            def sneaky(self):
                def txn():
                    return self._conn.execute("SELECT 3")
                return txn()
        """,
        "src/repro/store/store.py",
    )
    assert rule_ids(result) == ["R4"]


# ---------------------------------------------------------------------------
# R5 identity purity
# ---------------------------------------------------------------------------

def test_r5_flags_ambient_state_in_identity_functions(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import os
        import time

        from repro.store.spec import CampaignSpec, seed_fingerprint

        def bad_spec(campaign):
            label = os.environ.get("LABEL", "x")
            return CampaignSpec(backend=label)

        def bad_digest():
            if time.time():
                return seed_fingerprint(7)
        """,
    )
    assert rule_ids(result) == ["R5", "R5"]
    assert "provenance digest" in result.findings[0].message


def test_r5_ignores_ambient_state_outside_identity_paths(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import os

        def where_is_the_queue():
            return os.environ.get("REPRO_QUEUE")
        """,
    )
    assert result.findings == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

def test_suppression_on_line_is_honored_and_counted(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import numpy as np

        def tolerated(n):
            return np.random.rand(n)  # repro-lint: ok[R1] fixture reason
        """,
    )
    assert result.findings == []
    assert [finding.rule for finding in result.suppressed] == ["R1"]


def test_suppression_block_above_def_covers_function(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import numpy as np

        # repro-lint: ok[R1] whole helper is a documented exception
        # with a second comment line continuing the rationale.
        def tolerated(n):
            a = np.random.rand(n)
            b = np.random.rand(n)
            return a, b
        """,
    )
    assert result.findings == []
    assert len(result.suppressed) == 2


def test_suppression_above_except_handler(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def rollback(run, undo):
            try:
                run()
            # repro-lint: ok[R3] rollback-and-reraise keeps seam open
            except BaseException:
                undo()
                raise
        """,
        "src/repro/store/rollback.py",
    )
    assert result.findings == []
    assert len(result.suppressed) == 1


def test_suppression_does_not_leak_to_other_rules_or_lines(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import numpy as np

        def half(n):
            a = np.random.rand(n)  # repro-lint: ok[R2] wrong rule named
            return a
        """,
    )
    # ok[R2] does not cover an R1 finding.
    assert rule_ids(result) == ["R1"]


def test_suppression_with_unknown_rule_is_config_error(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import numpy as np

        def tolerated(n):
            return np.random.rand(n)  # repro-lint: ok[R9] no such rule
        """,
    )
    assert result.errors, "unknown rule id must be rejected"
    assert "unknown rule" in result.errors[0].message
    # ... and the finding it failed to suppress still stands.
    assert rule_ids(result) == ["R1"]


def test_suppression_without_reason_is_config_error(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import numpy as np

        def tolerated(n):
            return np.random.rand(n)  # repro-lint: ok[R1]
        """,
    )
    assert result.errors
    assert "reason" in result.errors[0].message


# ---------------------------------------------------------------------------
# Baseline ratchet
# ---------------------------------------------------------------------------

BASELINE_DEBT = """
import numpy as np

def old_debt(n):
    return np.random.rand(n)
"""

BASELINE_MORE_DEBT = """
import numpy as np

def old_debt(n):
    return np.random.rand(n)

def fresh_debt(n):
    return np.random.standard_normal(n)
"""


def _lint_cli(tmp_path, *extra):
    argv = [
        "--root", str(tmp_path),
        str(tmp_path / "src" / "repro"),
        "--baseline", str(tmp_path / "baseline.json"),
        *extra,
    ]
    return lint_main(argv)


def test_baseline_tolerates_known_debt_and_fails_new(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "debt.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(BASELINE_DEBT))

    # Without a baseline the debt fails the build.
    assert lint_main(
        ["--root", str(tmp_path), str(target.parent)]
    ) == EXIT_FINDINGS

    # Baseline it: the same run is clean.
    assert _lint_cli(tmp_path, "--write-baseline") == EXIT_CLEAN
    assert _lint_cli(tmp_path) == EXIT_CLEAN

    # A *new* finding is never absorbed by the baseline.
    target.write_text(textwrap.dedent(BASELINE_MORE_DEBT))
    assert _lint_cli(tmp_path) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "standard_normal" in out  # the new finding is the one shown
    assert "1 finding(s)" in out and "1 baselined" in out


def test_baseline_must_shrink_when_debt_is_fixed(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "debt.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(BASELINE_DEBT))
    assert _lint_cli(tmp_path, "--write-baseline") == EXIT_CLEAN
    entries = load_baseline(tmp_path / "baseline.json")
    assert len(entries) == 1

    # Fix the debt: a stale baseline entry is itself a failure (the
    # ratchet only turns one way) ...
    target.write_text("def clean():\n    return 0\n")
    assert _lint_cli(tmp_path) == EXIT_STALE_BASELINE
    assert "stale baseline entry" in capsys.readouterr().out

    # ... until the baseline is rewritten, which shrinks it.
    assert _lint_cli(tmp_path, "--write-baseline") == EXIT_CLEAN
    assert load_baseline(tmp_path / "baseline.json") == []
    assert _lint_cli(tmp_path) == EXIT_CLEAN


def test_baseline_fingerprints_survive_unrelated_edits(tmp_path):
    target = tmp_path / "src" / "repro" / "debt.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(BASELINE_DEBT))
    result = lint_paths([target], tmp_path, ALL_RULES)
    entries = write_baseline(tmp_path / "baseline.json", result)

    # Prepend unrelated code: the finding moves lines but keeps its
    # fingerprint, so the baseline still matches.
    target.write_text(
        "CONSTANT = 1\n\n\n" + textwrap.dedent(BASELINE_DEBT)
    )
    moved = lint_paths([target], tmp_path, ALL_RULES)
    comparison = compare(moved, entries)
    assert comparison.new == []
    assert len(comparison.baselined) == 1
    assert comparison.stale == []


def test_malformed_baseline_is_config_error(tmp_path):
    (tmp_path / "src" / "repro").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "ok.py").write_text("x = 1\n")
    (tmp_path / "baseline.json").write_text("[]")  # not the schema
    assert _lint_cli(tmp_path) == EXIT_CONFIG


# ---------------------------------------------------------------------------
# CLI: output formats, rule filtering, exit codes
# ---------------------------------------------------------------------------

def test_json_output_schema(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "debt.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(BASELINE_DEBT))
    code = lint_main(
        ["--root", str(tmp_path), str(target.parent), "--format", "json"]
    )
    assert code == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["exit_code"] == EXIT_FINDINGS
    assert set(payload["counts"]) == {
        "files_checked",
        "findings",
        "suppressed",
        "baselined",
        "stale_baseline",
    }
    (finding,) = payload["findings"]
    assert set(finding) == {"rule", "path", "line", "col", "message", "snippet"}
    assert finding["rule"] == "R1"
    assert finding["path"] == "src/repro/debt.py"
    assert finding["line"] == 5
    assert "np.random.rand" in finding["snippet"]


def test_rule_filter_and_unknown_rule_exit_codes(tmp_path):
    target = tmp_path / "src" / "repro" / "mixed.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        textwrap.dedent(
            """
            import numpy as np
            import time

            def bad(n, t0):
                return np.random.rand(n), time.time() - t0
            """
        )
    )
    base = ["--root", str(tmp_path), str(target.parent)]
    assert lint_main(base) == EXIT_FINDINGS  # R1 + R2
    # Filtering to R3 only: neither violation is in scope.
    assert lint_main(base + ["--rule", "R3"]) == EXIT_CLEAN
    # Unknown rule id: distinct config-error exit.
    assert lint_main(base + ["--rule", "R99"]) == EXIT_CONFIG
    with pytest.raises(ValueError):
        rules_for(["R99"])


def test_missing_path_and_syntax_error_are_config_errors(tmp_path):
    assert lint_main(
        ["--root", str(tmp_path), str(tmp_path / "nope")]
    ) == EXIT_CONFIG
    target = tmp_path / "src" / "repro" / "broken.py"
    target.parent.mkdir(parents=True)
    target.write_text("def broken(:\n")
    assert lint_main(
        ["--root", str(tmp_path), str(target.parent)]
    ) == EXIT_CONFIG


def test_list_rules_names_all_five(capsys):
    assert lint_main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for rule_id in ("R1", "R2", "R3", "R4", "R5"):
        assert rule_id in out


def test_rule_filter_still_accepts_other_rules_suppressions(tmp_path):
    # Running `--rule R1` must not reject a valid ok[R3] annotation.
    target = tmp_path / "src" / "repro" / "distributed" / "x.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        textwrap.dedent(
            """
            def rollback(run):
                try:
                    run()
                # repro-lint: ok[R3] rollback-and-reraise
                except BaseException:
                    raise
            """
        )
    )
    assert lint_main(
        ["--root", str(tmp_path), str(target.parent), "--rule", "R1"]
    ) == EXIT_CLEAN


# ---------------------------------------------------------------------------
# The standing acceptance criterion: the repo itself is clean
# ---------------------------------------------------------------------------

def test_repo_sources_are_lint_clean():
    """`repro lint` runs clean on the real src/ + benchmarks/ trees.

    Every finding must be fixed or carry an inline justification; the
    committed baseline only exists to ratchet future debt and is empty
    today.  This test is the same gate CI runs.
    """
    result = lint_paths(
        [REPO_ROOT / "src" / "repro", REPO_ROOT / "benchmarks"],
        REPO_ROOT,
        ALL_RULES,
        known_rules=set(RULES_BY_ID),
    )
    assert result.errors == []
    assert result.findings == [], [
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in result.findings
    ]
    # The suppressions carrying the contracts' documented exceptions
    # are present (queue reads, the rollback seam, the skew clock).
    assert len(result.suppressed) >= 10


def test_committed_baseline_is_loadable_and_empty():
    entries = load_baseline(REPO_ROOT / "lint-baseline.json")
    assert entries == []


def test_repro_cli_wires_lint_subcommand(tmp_path, capsys):
    from repro.cli import main as repro_main

    target = tmp_path / "src" / "repro" / "debt.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(BASELINE_DEBT))
    code = repro_main(["lint", "--root", str(tmp_path), str(target.parent)])
    assert code == EXIT_FINDINGS
    assert "R1" in capsys.readouterr().out
