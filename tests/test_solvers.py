"""Tests for value iteration, backward induction and policy iteration.

Includes the cross-solver consistency checks the paper's development
process implicitly relies on ("the optimized logic is correct with
respect to the model"): on the same model, all solvers must agree.
"""

import numpy as np
import pytest

from repro.mdp.model import TabularMDP
from repro.mdp.policy_iteration import policy_iteration
from repro.mdp.value_iteration import backward_induction, value_iteration


def make_random_mdp(num_states=6, num_actions=3, seed=0):
    rng = np.random.default_rng(seed)
    transitions = rng.uniform(size=(num_actions, num_states, num_states))
    transitions /= transitions.sum(axis=2, keepdims=True)
    rewards = rng.uniform(-1, 1, size=(num_actions, num_states))
    return TabularMDP(transitions, rewards)


def chain_mdp():
    """Deterministic 3-state chain with a known optimal value."""
    # States 0,1,2; action 0 advances, action 1 stays.  Reward 1 for
    # arriving at state 2, else 0.  State 2 is absorbing.
    transitions = np.zeros((2, 3, 3))
    transitions[0, 0, 1] = 1.0
    transitions[0, 1, 2] = 1.0
    transitions[0, 2, 2] = 1.0
    transitions[1, 0, 0] = 1.0
    transitions[1, 1, 1] = 1.0
    transitions[1, 2, 2] = 1.0
    rewards = np.zeros((2, 3))
    rewards[0, 1] = 1.0  # advancing from 1 reaches the goal
    return TabularMDP(transitions, rewards)


class TestValueIteration:
    def test_converges_on_random_mdp(self):
        result = value_iteration(make_random_mdp(), discount=0.9)
        assert result.converged
        assert result.residual < 1e-8

    def test_chain_optimal_values(self):
        result = value_iteration(chain_mdp(), discount=0.5)
        # V(1) = 1 (advance now); V(0) = 0 + 0.5 * V(1) = 0.5.
        assert result.values[1] == pytest.approx(1.0, abs=1e-6)
        assert result.values[0] == pytest.approx(0.5, abs=1e-6)
        np.testing.assert_array_equal(result.policy[:2], [0, 0])

    def test_bellman_fixed_point(self):
        mdp = make_random_mdp(seed=3)
        result = value_iteration(mdp, discount=0.8)
        q = mdp.q_backup(result.values, 0.8)
        np.testing.assert_allclose(q.max(axis=0), result.values, atol=1e-6)

    def test_warm_start_accepted(self):
        mdp = make_random_mdp(seed=1)
        cold = value_iteration(mdp, discount=0.9)
        warm = value_iteration(mdp, discount=0.9, initial_values=cold.values)
        assert warm.iterations <= cold.iterations
        np.testing.assert_allclose(warm.values, cold.values, atol=1e-6)

    def test_invalid_discount_rejected(self):
        with pytest.raises(ValueError):
            value_iteration(make_random_mdp(), discount=1.5)

    def test_max_iterations_respected(self):
        result = value_iteration(
            make_random_mdp(), discount=0.99, max_iterations=3
        )
        assert result.iterations == 3
        assert not result.converged


class TestPolicyIteration:
    def test_agrees_with_value_iteration(self):
        mdp = make_random_mdp(seed=7)
        vi = value_iteration(mdp, discount=0.9, tolerance=1e-12)
        pi = policy_iteration(mdp, discount=0.9)
        assert pi.converged
        np.testing.assert_allclose(pi.values, vi.values, atol=1e-6)
        # Policies agree wherever Q-values are not tied.
        q = vi.q_values
        for s in range(mdp.num_states):
            assert q[pi.policy[s], s] == pytest.approx(
                q[vi.policy[s], s], abs=1e-6
            )

    def test_multiple_seeds(self):
        for seed in range(5):
            mdp = make_random_mdp(seed=seed)
            vi = value_iteration(mdp, discount=0.85, tolerance=1e-12)
            pi = policy_iteration(mdp, discount=0.85)
            np.testing.assert_allclose(pi.values, vi.values, atol=1e-5)

    def test_rejects_discount_one(self):
        with pytest.raises(ValueError):
            policy_iteration(make_random_mdp(), discount=1.0)

    def test_initial_policy_used(self):
        mdp = make_random_mdp(seed=2)
        result = policy_iteration(
            mdp, discount=0.9, initial_policy=np.ones(6, dtype=int)
        )
        assert result.converged


class TestBackwardInduction:
    def test_horizon_one_is_greedy_on_terminal(self):
        mdp = chain_mdp()
        terminal = np.array([0.0, 0.0, 5.0])
        result = backward_induction(mdp, horizon=1, terminal_values=terminal)
        # From state 1, advancing earns 1 + terminal(2) = 6.
        assert result.values[1][1] == pytest.approx(6.0)
        assert result.policies[0][1] == 0

    def test_values_are_monotone_in_horizon_for_positive_rewards(self):
        transitions = np.zeros((1, 2, 2))
        transitions[0] = [[0.5, 0.5], [0.5, 0.5]]
        rewards = np.ones((1, 2))
        mdp = TabularMDP(transitions, rewards)
        result = backward_induction(mdp, horizon=4)
        for k in range(4):
            assert np.all(result.values[k + 1] >= result.values[k])

    def test_horizon_matches_length(self):
        result = backward_induction(chain_mdp(), horizon=3)
        assert result.horizon == 3
        assert len(result.values) == 4  # includes terminal stage

    def test_infinite_horizon_limit_matches_value_iteration(self):
        # With discounting, long-horizon backward induction converges
        # to the infinite-horizon values.
        mdp = make_random_mdp(seed=9)
        vi = value_iteration(mdp, discount=0.7, tolerance=1e-12)
        bi = backward_induction(mdp, horizon=80, discount=0.7)
        np.testing.assert_allclose(bi.values[-1], vi.values, atol=1e-8)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError):
            backward_induction(chain_mdp(), horizon=0)

    def test_bad_terminal_shape_rejected(self):
        with pytest.raises(ValueError):
            backward_induction(
                chain_mdp(), horizon=2, terminal_values=np.zeros(5)
            )
