"""Tests for repro.mdp.model."""

import numpy as np
import pytest

from repro.mdp.model import MDPDefinition, TabularMDP, build_transition_tensor


def two_state_mdp():
    """A 2-state, 2-action MDP with known optimal behaviour.

    Action 0 stays put (reward 0 in state 0, 1 in state 1); action 1
    flips state (reward -0.1).  Optimal: flip from state 0, stay in 1.
    """
    transitions = np.zeros((2, 2, 2))
    transitions[0, 0, 0] = 1.0
    transitions[0, 1, 1] = 1.0
    transitions[1, 0, 1] = 1.0
    transitions[1, 1, 0] = 1.0
    rewards = np.array([[0.0, 1.0], [-0.1, -0.1]])
    return TabularMDP(transitions, rewards)


class TestTabularMDP:
    def test_shapes(self):
        mdp = two_state_mdp()
        assert mdp.num_states == 2
        assert mdp.num_actions == 2

    def test_rejects_bad_transition_shape(self):
        with pytest.raises(ValueError):
            TabularMDP(np.zeros((2, 3, 4)), np.zeros((2, 3)))

    def test_rejects_unnormalized_rows(self):
        transitions = np.zeros((1, 2, 2))
        transitions[0, 0, 0] = 0.5  # row sums to 0.5
        transitions[0, 1, 1] = 1.0
        with pytest.raises(ValueError, match="sum to 1"):
            TabularMDP(transitions, np.zeros((1, 2)))

    def test_rejects_bad_reward_shape(self):
        transitions = np.zeros((1, 2, 2))
        transitions[:, np.arange(2), np.arange(2)] = 1.0
        with pytest.raises(ValueError):
            TabularMDP(transitions, np.zeros((1, 3)))

    def test_successor_dependent_rewards_reduced(self):
        transitions = np.zeros((1, 2, 2))
        transitions[0, 0] = [0.5, 0.5]
        transitions[0, 1] = [0.0, 1.0]
        rewards3 = np.zeros((1, 2, 2))
        rewards3[0, 0] = [10.0, 20.0]
        mdp = TabularMDP(transitions, rewards3)
        assert mdp.rewards[0, 0] == pytest.approx(15.0)

    def test_q_backup(self):
        mdp = two_state_mdp()
        values = np.array([0.0, 10.0])
        q = mdp.q_backup(values, discount=0.5)
        # Action 1 from state 0: -0.1 + 0.5 * 10.
        assert q[1, 0] == pytest.approx(4.9)
        # Action 0 in state 0: 0 + 0.5 * 0.
        assert q[0, 0] == pytest.approx(0.0)

    def test_terminal_states_pinned(self):
        transitions = np.zeros((1, 2, 2))
        transitions[0, 0] = [0.0, 1.0]
        transitions[0, 1] = [0.0, 1.0]
        mdp = TabularMDP(
            transitions,
            np.array([[5.0, 99.0]]),
            terminal=np.array([False, True]),
        )
        q = mdp.q_backup(np.array([1.0, 123.0]), discount=1.0)
        # Continuation through the terminal state contributes zero.
        assert q[0, 0] == pytest.approx(5.0)
        # Terminal state's own action values are zeroed.
        assert q[0, 1] == 0.0

    def test_validate_policy(self):
        mdp = two_state_mdp()
        mdp.validate_policy(np.array([0, 1]))
        with pytest.raises(ValueError):
            mdp.validate_policy(np.array([0]))
        with pytest.raises(ValueError):
            mdp.validate_policy(np.array([0, 5]))


class _Chain(MDPDefinition):
    """3-state chain: action 0 moves right, reward 1 on reaching end."""

    @property
    def num_states(self):
        return 3

    @property
    def num_actions(self):
        return 1

    def successors(self, state, action):
        nxt = min(state + 1, 2)
        return [nxt], [1.0], 1.0 if nxt == 2 and state != 2 else 0.0


class TestMDPDefinition:
    def test_to_tabular(self):
        mdp = _Chain().to_tabular()
        assert mdp.num_states == 3
        assert mdp.transitions[0, 0, 1] == 1.0
        assert mdp.rewards[0, 1] == 1.0
        assert mdp.rewards[0, 0] == 0.0


class TestBuildTransitionTensor:
    def test_accumulates_duplicates(self):
        tensor = build_transition_tensor(
            1, 2, [(0, 0, 1, 0.5), (0, 0, 1, 0.5), (0, 1, 1, 1.0)]
        )
        assert tensor[0, 0, 1] == pytest.approx(1.0)
        assert tensor[0, 1, 1] == pytest.approx(1.0)
