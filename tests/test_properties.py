"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold for *any* encounter the scenario space can
produce — the kind of blanket guarantees unit tests on hand-picked
cases cannot give.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dynamics.aircraft import cpa_horizontal_miss, time_to_cpa
from repro.encounters.encoding import EncounterParameters, decode_encounter
from repro.search.fitness import COLLISION_GAIN, paper_fitness
from repro.sim import BatchEncounterSimulator, EncounterSimConfig
from repro.sim.disturbance import DisturbanceModel
from repro.sim.sensors import AdsBSensor

#: Strategy over the full scenario-generator parameter box.
encounter_params = st.builds(
    EncounterParameters,
    own_ground_speed=st.floats(15.0, 50.0),
    own_vertical_speed=st.floats(-5.0, 5.0),
    time_to_cpa=st.floats(20.0, 40.0),
    cpa_horizontal_distance=st.floats(0.0, 152.0),
    cpa_angle=st.floats(0.0, 2 * math.pi),
    cpa_vertical_distance=st.floats(-30.0, 30.0),
    intruder_ground_speed=st.floats(15.0, 50.0),
    intruder_bearing=st.floats(0.0, 2 * math.pi),
    intruder_vertical_speed=st.floats(-5.0, 5.0),
)


class TestEncounterGeometryProperties:
    @settings(max_examples=60)
    @given(encounter_params)
    def test_unmaneuvered_cpa_miss_within_configured_bounds(self, params):
        # The kinematic CPA of the decoded states can never exceed the
        # configured horizontal miss distance (it may be smaller when
        # the straight-line CPA time differs from the parameter T for
        # slow geometries, never larger).
        own, intruder = decode_encounter(params)
        miss = cpa_horizontal_miss(own, intruder)
        assert miss <= params.cpa_horizontal_distance + 1e-6

    @settings(max_examples=60)
    @given(encounter_params)
    def test_time_to_cpa_nonnegative_and_finite(self, params):
        own, intruder = decode_encounter(params)
        tau = time_to_cpa(own, intruder)
        assert tau >= 0.0
        assert np.isfinite(tau)


class TestFitnessProperties:
    @given(
        st.lists(st.floats(0.0, 1e5), min_size=1, max_size=30),
        st.floats(0.1, 50.0),
    )
    def test_fitness_decreases_when_all_distances_grow(self, distances, shift):
        base = paper_fitness(np.array(distances))
        shifted = paper_fitness(np.array(distances) + shift)
        assert shifted < base

    @given(st.lists(st.floats(0.0, 1e5), min_size=1, max_size=30))
    def test_fitness_of_subsets_brackets_mean(self, distances):
        values = np.array(distances)
        per_run = COLLISION_GAIN / (1.0 + values)
        total = paper_fitness(values)
        assert per_run.min() - 1e-9 <= total <= per_run.max() + 1e-9


@pytest.mark.parametrize("equipage", ["none", "both"])
class TestBatchSimulatorProperties:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(params=encounter_params, seed=st.integers(0, 2**16))
    def test_invariants_hold_for_any_encounter(
        self, test_table, equipage, params, seed
    ):
        config = EncounterSimConfig(
            disturbance=DisturbanceModel(vertical_rate_std=0.3),
            sensor=AdsBSensor(),
        )
        table = None if equipage == "none" else test_table
        simulator = BatchEncounterSimulator(table, config, equipage=equipage)
        result = simulator.run(params, 4, seed=seed)

        # Separations are positive and minima are consistent.
        assert np.all(result.min_separation >= 0.0)
        assert np.all(result.min_horizontal >= 0.0)
        assert np.all(result.min_separation >= result.min_horizontal - 1e-9)

        # Minimum separation can never exceed the initial separation.
        own, intruder = decode_encounter(params)
        initial = own.distance_to(intruder)
        assert np.all(result.min_separation <= initial + 1e-6)

        # Unequipped runs never alert.
        if equipage == "none":
            assert not result.own_alerted.any()

        # NMAC implies close approach in both dimensions at once, so
        # min 3-D separation must be below the NMAC diagonal.
        diagonal = math.hypot(152.4, 30.48)
        if result.nmac.any():
            assert result.min_separation[result.nmac].min() <= diagonal
