"""Tests for stratified Monte-Carlo estimation."""

import numpy as np
import pytest

from repro.encounters import StatisticalEncounterModel
from repro.montecarlo.stratified import STRATA, StratifiedEstimator
from repro.sim.encounter import EncounterSimConfig


@pytest.fixture(scope="module")
def report(test_table):
    estimator = StratifiedEstimator(
        test_table,
        StatisticalEncounterModel(),
        sim_config=EncounterSimConfig(),
        runs_per_encounter=4,
    )
    return estimator.estimate(encounters_per_stratum=12, seed=0, pilot=300)


class TestStratifiedEstimator:
    def test_validation(self, test_table):
        source = StatisticalEncounterModel()
        with pytest.raises(ValueError):
            StratifiedEstimator(test_table, source, runs_per_encounter=0)
        estimator = StratifiedEstimator(test_table, source)
        with pytest.raises(ValueError):
            estimator.estimate(0)

    def test_all_strata_estimated(self, report):
        assert [s.name for s in report.strata] == list(STRATA)
        for stratum in report.strata:
            assert stratum.encounters == 12
            assert 0.0 <= stratum.nmac.rate <= 1.0

    def test_weights_form_distribution(self, report):
        total = sum(s.weight for s in report.strata)
        assert total == pytest.approx(1.0)

    def test_combined_rate_is_weighted_mixture(self, report):
        expected = sum(s.weight * s.nmac.rate for s in report.strata)
        assert report.combined_rate == pytest.approx(expected)

    def test_tail_stratum_is_riskiest(self, report):
        rates = {s.name: s.nmac.rate for s in report.strata}
        # The paper's finding must show up per-stratum: tail approaches
        # carry the highest equipped NMAC rate.
        assert rates["tail-approach"] >= rates["head-on"]

    def test_errors_positive_and_reduction_reported(self, report):
        assert report.combined_std_error >= 0.0
        assert report.naive_std_error >= report.combined_std_error * 0.5
        assert report.variance_reduction > 0.0

    def test_summary_text(self, report):
        text = report.summary()
        assert "combined NMAC rate" in text
        assert "variance reduction" in text

    def test_deterministic_given_seed(self, test_table):
        estimator = StratifiedEstimator(
            test_table,
            StatisticalEncounterModel(),
            runs_per_encounter=2,
        )
        a = estimator.estimate(4, seed=7, pilot=100)
        b = estimator.estimate(4, seed=7, pilot=100)
        assert a.combined_rate == b.combined_rate
