"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import RngStream, as_generator, spawn_child


class TestAsGenerator:
    def test_from_int_seed_is_deterministic(self):
        a = as_generator(42).uniform(size=5)
        b = as_generator(42).uniform(size=5)
        np.testing.assert_array_equal(a, b)

    def test_from_generator_returns_same_object(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_from_stream_unwraps(self):
        stream = RngStream(7)
        assert as_generator(stream) is stream.generator

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnChild:
    def test_child_differs_from_parent(self):
        parent = as_generator(1)
        child = spawn_child(parent)
        a = parent.uniform(size=10)
        b = child.uniform(size=10)
        assert not np.allclose(a, b)

    def test_spawn_is_deterministic_given_seed(self):
        c1 = spawn_child(as_generator(5)).uniform(size=5)
        c2 = spawn_child(as_generator(5)).uniform(size=5)
        np.testing.assert_array_equal(c1, c2)


class TestRngStream:
    def test_spawned_children_are_independent(self):
        root = RngStream(3)
        a = root.spawn().uniform(size=10)
        b = root.spawn().uniform(size=10)
        assert not np.allclose(a, b)

    def test_spawn_names(self):
        root = RngStream(0, name="root")
        child = root.spawn()
        assert child.name == "root.1"
        named = root.spawn("sensor")
        assert named.name == "sensor"

    def test_same_seed_same_spawn_tree(self):
        a = RngStream(11).spawn().spawn().uniform(size=4)
        b = RngStream(11).spawn().spawn().uniform(size=4)
        np.testing.assert_array_equal(a, b)

    def test_passthrough_draws(self):
        stream = RngStream(0)
        assert stream.normal(size=3).shape == (3,)
        assert stream.uniform(size=3).shape == (3,)
        assert 0 <= stream.integers(0, 10) < 10
        assert stream.choice([1, 2, 3]) in (1, 2, 3)

    def test_repr_mentions_name(self):
        assert "myname" in repr(RngStream(0, name="myname"))
