"""Tests for the 9-parameter encounter encoding (Eqs. (2)–(3)).

The central property: decoding an encounter and flying both aircraft
straight for ``time_to_cpa`` seconds must land the intruder exactly at
the configured CPA offset (R, θ, Y) relative to the own-ship.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dynamics.aircraft import time_to_cpa
from repro.encounters.encoding import (
    DEFAULT_OWN_POSITION,
    PARAMETER_NAMES,
    EncounterParameters,
    cpa_states,
    decode_encounter,
    head_on_encounter,
    tail_approach_encounter,
)


def make_params(**overrides):
    defaults = dict(
        own_ground_speed=30.0,
        own_vertical_speed=0.0,
        time_to_cpa=30.0,
        cpa_horizontal_distance=50.0,
        cpa_angle=1.0,
        cpa_vertical_distance=-10.0,
        intruder_ground_speed=25.0,
        intruder_bearing=2.5,
        intruder_vertical_speed=1.5,
    )
    defaults.update(overrides)
    return EncounterParameters(**defaults)


class TestParameters:
    def test_nine_parameters(self):
        assert len(PARAMETER_NAMES) == 9

    def test_array_round_trip(self):
        params = make_params()
        recovered = EncounterParameters.from_array(params.as_array())
        assert recovered == params

    def test_from_array_validates_length(self):
        with pytest.raises(ValueError):
            EncounterParameters.from_array(np.zeros(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            make_params(own_ground_speed=-1.0)
        with pytest.raises(ValueError):
            make_params(time_to_cpa=0.0)
        with pytest.raises(ValueError):
            make_params(cpa_horizontal_distance=-5.0)


class TestDecode:
    def test_own_state_fixed(self):
        own, __ = decode_encounter(make_params())
        np.testing.assert_allclose(own.position, DEFAULT_OWN_POSITION)
        assert own.velocity[0] == pytest.approx(30.0)  # bearing 0
        assert own.velocity[1] == pytest.approx(0.0)

    def test_intruder_velocity_from_polar(self):
        params = make_params(
            intruder_ground_speed=10.0, intruder_bearing=math.pi / 2,
            intruder_vertical_speed=-2.0,
        )
        __, intruder = decode_encounter(params)
        np.testing.assert_allclose(
            intruder.velocity, [0.0, 10.0, -2.0], atol=1e-12
        )

    def test_cpa_offset_achieved(self):
        params = make_params()
        own_cpa, intruder_cpa = cpa_states(params)
        delta = intruder_cpa.position - own_cpa.position
        horizontal = math.hypot(delta[0], delta[1])
        assert horizontal == pytest.approx(params.cpa_horizontal_distance)
        assert delta[2] == pytest.approx(params.cpa_vertical_distance)
        angle = math.atan2(delta[1], delta[0])
        assert angle == pytest.approx(params.cpa_angle)

    @settings(max_examples=40)
    @given(
        st.floats(5.0, 50.0),
        st.floats(-5.0, 5.0),
        st.floats(5.0, 60.0),
        st.floats(0.1, 400.0),
        st.floats(-math.pi, math.pi),
        st.floats(-100.0, 100.0),
        st.floats(5.0, 50.0),
        st.floats(-math.pi, math.pi),
        st.floats(-5.0, 5.0),
    )
    def test_cpa_property_holds_generally(
        self, gso, vso, t, r, theta, y, gsi, psi, vsi
    ):
        params = EncounterParameters(gso, vso, t, r, theta, y, gsi, psi, vsi)
        own_cpa, intruder_cpa = cpa_states(params)
        delta = intruder_cpa.position - own_cpa.position
        assert math.hypot(delta[0], delta[1]) == pytest.approx(r, abs=1e-6)
        assert delta[2] == pytest.approx(y, abs=1e-6)

    def test_zero_miss_encounter_actually_meets(self):
        params = make_params(cpa_horizontal_distance=0.0,
                             cpa_vertical_distance=0.0)
        own, intruder = decode_encounter(params)
        t = params.time_to_cpa
        own_then = own.position + own.velocity * t
        intruder_then = intruder.position + intruder.velocity * t
        np.testing.assert_allclose(own_then, intruder_then, atol=1e-9)


class TestCanonicalEncounters:
    def test_head_on_geometry(self):
        params = head_on_encounter(ground_speed=20.0, time_to_cpa=25.0)
        own, intruder = decode_encounter(params)
        # Opposing tracks.
        assert intruder.velocity[0] == pytest.approx(-own.velocity[0])
        # The kinematic CPA time matches the encoding.
        assert time_to_cpa(own, intruder) == pytest.approx(25.0, abs=1e-6)

    def test_head_on_with_miss_distance(self):
        params = head_on_encounter(miss_distance=100.0)
        own_cpa, intruder_cpa = cpa_states(params)
        assert own_cpa.horizontal_distance_to(intruder_cpa) == pytest.approx(
            100.0
        )

    def test_tail_approach_has_small_relative_speed(self):
        params = tail_approach_encounter(overtake_speed=1.5)
        own, intruder = decode_encounter(params)
        rel = intruder.velocity[:2] - own.velocity[:2]
        assert math.hypot(rel[0], rel[1]) == pytest.approx(1.5)

    def test_tail_approach_vertical_crossing(self):
        params = tail_approach_encounter()
        assert params.own_vertical_speed < 0 < params.intruder_vertical_speed

    def test_tail_approach_starts_behind(self):
        params = tail_approach_encounter(overtake_speed=2.0, time_to_cpa=30.0)
        own, intruder = decode_encounter(params)
        assert intruder.position[0] < own.position[0]
