"""Tests for the ACAS XU-like offline model: config, dynamics, solver.

The behavioural assertions encode what a generated collision avoidance
logic must do: escalate as τ shrinks, pick the sense that increases
separation, respect the NMAC terminal cost, and cost alerts so level
flight is preferred when safe.
"""

import numpy as np
import pytest

from repro.acasx.advisories import (
    ADVISORIES,
    CLIMB,
    COC,
    DESCEND,
    NUM_ADVISORIES,
    STRONG_CLIMB,
)
from repro.acasx.config import AcasConfig
from repro.acasx.config import paper_config as paper_preset
from repro.acasx.config import test_config as fast_preset
from repro.acasx.dynamics import (
    intruder_rate_samples,
    own_rate_samples,
    ramp_rates,
    relative_altitude_change,
)
from repro.acasx.solver import (
    build_action_transition,
    build_logic_table,
    stage_reward_matrix,
    terminal_values,
)


class TestConfig:
    def test_presets_valid(self):
        assert fast_preset().horizon == 25
        assert paper_preset().horizon == 40

    def test_preset_overrides(self):
        assert fast_preset(horizon=10).horizon == 10

    def test_noise_must_normalize(self):
        with pytest.raises(ValueError):
            AcasConfig(own_noise=((0.0, 0.5), (1.0, 0.2)))

    def test_rate_grid_must_cover_strong_advisory(self):
        with pytest.raises(ValueError):
            AcasConfig(rate_max=10.0)

    def test_grid_points(self):
        config = AcasConfig(num_h=5, h_max=100.0)
        np.testing.assert_allclose(
            config.h_points, [-100, -50, 0, 50, 100]
        )

    def test_cube_size(self):
        config = AcasConfig(num_h=5, num_rate=3)
        assert config.cube_size == 45

    def test_nmac_cost_matches_paper(self):
        assert AcasConfig().nmac_cost == 10_000.0


class TestDynamics:
    def test_ramp_toward_target(self):
        rates = np.array([0.0, 5.0, 13.0])
        ramped = ramp_rates(rates, CLIMB, dt=1.0)
        accel = CLIMB.acceleration
        assert ramped[0] == pytest.approx(accel)  # limited by accel
        assert ramped[1] == pytest.approx(min(5.0 + accel, CLIMB.target_rate))
        assert ramped[2] == pytest.approx(13.0 - accel)  # decelerates to target

    def test_coc_leaves_rates_unchanged(self):
        rates = np.array([-3.0, 0.0, 7.0])
        np.testing.assert_array_equal(ramp_rates(rates, COC, 1.0), rates)

    def test_own_samples_probabilities(self):
        config = fast_preset()
        samples = own_rate_samples(config, CLIMB)
        assert sum(p for _, p in samples) == pytest.approx(1.0)

    def test_intruder_samples_are_white_noise(self):
        config = fast_preset()
        samples = intruder_rate_samples(config)
        # Zero-mean: expected rate change is 0.
        mean_change = sum(
            p * (rates[0] - config.rate_points[0]) for rates, p in samples
        )
        assert mean_change == pytest.approx(0.0, abs=1e-12)

    def test_relative_altitude_trapezoid(self):
        # Own climbs 0->2, intruder steady at 0: h loses the trapezoid
        # of the own-ship's climb: (0+2)/2 * 1 = 1.
        h = relative_altitude_change(
            np.array([0.0]), np.array([0.0]), np.array([2.0]),
            np.array([0.0]), np.array([0.0]), dt=1.0,
        )
        assert h[0] == pytest.approx(-1.0)


class TestRewards:
    def test_coc_rewarded(self):
        rewards = stage_reward_matrix(fast_preset())
        assert rewards[COC.index, COC.index] > 0

    def test_alert_costs_scale_with_strength(self):
        rewards = stage_reward_matrix(fast_preset())
        maintain_climb = rewards[CLIMB.index, CLIMB.index]
        maintain_strong = rewards[STRONG_CLIMB.index, STRONG_CLIMB.index]
        assert maintain_strong < maintain_climb < 0

    def test_reversal_more_expensive_than_maintaining(self):
        config = fast_preset()
        rewards = stage_reward_matrix(config)
        reversal = rewards[CLIMB.index, DESCEND.index]
        maintain = rewards[CLIMB.index, CLIMB.index]
        assert reversal <= maintain - config.reversal_cost

    def test_new_alert_charged(self):
        config = fast_preset()
        rewards = stage_reward_matrix(config)
        new_alert = rewards[COC.index, CLIMB.index]
        maintain = rewards[CLIMB.index, CLIMB.index]
        assert new_alert == pytest.approx(maintain - config.new_alert_cost)


class TestTerminalValues:
    def test_nmac_band_penalized(self):
        config = fast_preset()
        values = terminal_values(config).reshape(
            config.num_h, config.num_rate, config.num_rate
        )
        h = config.h_points
        inside = np.abs(h) < config.nmac_vertical
        assert np.all(values[inside] == -config.nmac_cost)
        assert np.all(values[~inside] == 0.0)


class TestTransitionMatrices:
    @pytest.mark.parametrize("advisory", ADVISORIES, ids=lambda a: a.name)
    def test_rows_are_distributions(self, advisory):
        config = AcasConfig(num_h=9, num_rate=5, horizon=5)
        matrix = build_action_transition(config, advisory)
        row_sums = np.asarray(matrix.sum(axis=1)).ravel()
        np.testing.assert_allclose(row_sums, 1.0, atol=1e-9)

    def test_climb_shifts_relative_altitude_down(self):
        # Starting co-altitude and level, a CLIMB advisory moves
        # probability mass toward negative h (intruder below).
        config = AcasConfig(num_h=21, num_rate=5, horizon=5)
        matrix = build_action_transition(config, CLIMB)
        from repro.acasx.logic_table import make_cube_grid

        grid = make_cube_grid(config)
        mid_rate = config.num_rate // 2
        mid_h = config.num_h // 2
        state = grid.flat_index(
            [np.array([mid_h]), np.array([mid_rate]), np.array([mid_rate])]
        )[0]
        row = np.asarray(matrix[state].todense()).ravel()
        h_values = grid.points()[:, 0]
        expected_h = float(row @ h_values)
        assert expected_h < 0.0


class TestSolvedTable:
    def test_q_shape(self, tiny_table, tiny_config):
        assert tiny_table.q.shape == (
            tiny_config.horizon + 1,
            NUM_ADVISORIES,
            NUM_ADVISORIES,
            tiny_config.cube_size,
        )

    def test_stage0_is_terminal_values(self, tiny_table, tiny_config):
        expected = terminal_values(tiny_config)
        for s in range(NUM_ADVISORIES):
            for a in range(NUM_ADVISORIES):
                np.testing.assert_allclose(
                    tiny_table.q[0, s, a], expected, atol=1e-4
                )

    def test_values_bounded_by_costs(self, tiny_table, tiny_config):
        # No Q-value can be worse than collision plus max accumulated
        # action costs, nor better than the summed COC reward.
        worst = -(
            tiny_config.nmac_cost
            + tiny_config.horizon
            * (
                tiny_config.alert_cost
                + tiny_config.strong_alert_extra
                + tiny_config.reversal_cost
                + tiny_config.new_alert_cost
                + tiny_config.strengthen_cost
            )
        )
        best = tiny_config.horizon * tiny_config.coc_reward
        assert tiny_table.q.min() >= worst
        assert tiny_table.q.max() <= best + 1e-3

    def test_escalation_with_tau(self, test_table):
        # From co-altitude level flight: far out COC, mid-range alert.
        far = test_table.best_advisory(25.0, COC, 0.0, 0.0, 0.0)
        mid = test_table.best_advisory(15.0, COC, 0.0, 0.0, 0.0)
        assert far is COC
        assert mid.is_active

    def test_sense_follows_geometry(self, test_table):
        # Intruder well above: the logic must not climb into it.
        advisory = test_table.best_advisory(12.0, COC, 150.0, 0.0, 0.0)
        if advisory.is_active:
            assert advisory.sense.value < 0
        # Intruder well below: must not descend into it.
        advisory = test_table.best_advisory(12.0, COC, -150.0, 0.0, 0.0)
        if advisory.is_active:
            assert advisory.sense.value > 0

    def test_safe_separation_keeps_coc(self, test_table):
        advisory = test_table.best_advisory(20.0, COC, 290.0, 0.0, 0.0)
        assert advisory is COC

    def test_values_degrade_as_tau_shrinks_at_coaltitude(self, test_table):
        values = [
            test_table.q_values_at(tau, COC, 0.0, 0.0, 0.0).max()
            for tau in (20.0, 10.0, 5.0, 2.0)
        ]
        assert values == sorted(values, reverse=True)

    def test_metadata_recorded(self, tiny_table):
        assert tiny_table.metadata["solver"] == "backward_induction"
        assert tiny_table.metadata["cube_size"] == tiny_table.config.cube_size
