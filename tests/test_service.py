"""Tests for the campaign REST service (`repro.service`).

Every endpoint is exercised through the in-process WSGI test client —
no sockets, so the full submit → progress → records → diff → watchlist
→ alert surface runs at unit-test speed against the exact routing and
serialization code the live server uses.  One ``slow``-marked test
covers the real socket path (threaded ``wsgiref`` server + urllib).

The two load-bearing guarantees from the issue are asserted directly:
a campaign submitted over the API stores bitwise-identical records to
the same spec run through ``Campaign.run``, and a degraded logic table
compared against a pinned baseline fires a ``GET /alerts`` regression.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.acasx.logic_table import LogicTable
from repro.experiments import Campaign
from repro.service import (
    CampaignService,
    Watchlist,
    WatchlistThread,
    make_app,
    make_http_server,
)
from repro.service.testing import ServiceClient
from repro.store import ResultStore
from repro.store.spec import results_digest

#: A small equipped campaign spec (resolves against the tiny table).
SPEC = {
    "scenarios": ["head_on", "tail_approach"],
    "runs": 3,
    "seed": 5,
    "wait": True,
}
#: Table-free spec: no solver involved at all.
UNEQUIPPED = {**SPEC, "equipage": "none"}


def degraded_table(table) -> LogicTable:
    """A deliberately broken twin: all-zero Q means no useful advice."""
    return LogicTable(
        table.config, np.zeros_like(table.q), metadata={"degraded": True}
    )


@pytest.fixture
def store():
    with ResultStore(":memory:") as result_store:
        yield result_store


@pytest.fixture
def service(store, tiny_table):
    svc = CampaignService(
        store,
        preset="tiny",
        tables={"tiny": tiny_table, "degraded": degraded_table(tiny_table)},
    )
    yield svc
    svc.close()


@pytest.fixture
def watchlist(store):
    return Watchlist(store, abs_tolerance=0.001)


@pytest.fixture
def client(service, watchlist):
    return ServiceClient(make_app(service, watchlist))


class TestSubmitFlow:
    def test_submit_progress_records_diff(self, client):
        receipt = client.post("/campaigns", json_body=SPEC).json()
        assert client.post("/campaigns", json_body=SPEC).status == 202
        cid = receipt["campaign_id"]
        assert receipt["num_scenarios"] == 2
        assert receipt["progress"]["complete"] is True

        progress = client.get(f"/campaigns/{cid}")
        assert progress.status == 200
        body = progress.json()
        assert body["completed"] == 2
        assert body["state"] == "done"
        assert body["error"] is None

        # Prefix resolution works over the API too.
        assert client.get(f"/campaigns/{cid[:10]}").status == 200

        rows = client.get(f"/campaigns/{cid}/records").json()
        assert rows["count"] == 2
        assert [r["scenario_index"] for r in rows["records"]] == [0, 1]
        page = client.get(
            f"/campaigns/{cid}/records?limit=1&offset=1"
        ).json()
        assert [r["scenario_index"] for r in page["records"]] == [1]
        filtered = client.get(
            f"/campaigns/{cid}/records?where=nmac_rate>=0"
        ).json()
        assert filtered["count"] == 2

        other = client.post(
            "/campaigns", json_body={**UNEQUIPPED, "label": "bare"}
        ).json()
        diff = client.get(
            f"/campaigns/{cid}/diff/{other['campaign_id']}"
        ).json()
        assert diff["a"]["campaign_id"] == cid
        assert diff["b"]["label"] == "bare"
        assert "nmac_rate" in diff["deltas"]
        # Same scenario list on both sides: records pair up.
        assert diff["paired_scenarios"] == 2

        listing = client.get("/campaigns").json()["campaigns"]
        assert {c["campaign_id"] for c in listing} == {
            cid, other["campaign_id"]
        }
        assert client.get("/campaigns?limit=1").json()["campaigns"][0][
            "campaign_id"
        ] in (cid, other["campaign_id"])

        health = client.get("/healthz").json()
        assert health["status"] == "ok"
        assert health["totals"] == {"campaigns": 2, "records": 4}

    def test_api_run_is_bitwise_identical_to_campaign_run(
        self, client, service, store, tiny_table
    ):
        receipt = client.post("/campaigns", json_body=SPEC).json()
        twin_store = ResultStore(":memory:")
        campaign = Campaign.from_spec(
            dict(SPEC), table=tiny_table, ignore=service.ENVELOPE_KEYS
        )
        twin = campaign.run(seed=SPEC["seed"], store=twin_store)
        assert twin.metadata["campaign_id"] == receipt["campaign_id"]
        assert results_digest(
            store.resultset(receipt["campaign_id"])
        ) == results_digest(twin)
        twin_store.close()

    def test_resubmission_of_complete_campaign_simulates_nothing(
        self, client
    ):
        first = client.post("/campaigns", json_body=UNEQUIPPED).json()
        again = client.post(
            "/campaigns",
            json_body={k: v for k, v in UNEQUIPPED.items() if k != "wait"},
        ).json()
        assert again["campaign_id"] == first["campaign_id"]
        assert again["mode"] == "complete"
        assert again["simulated"] == 0

    def test_async_submission_completes_in_background(self, client):
        receipt = client.post(
            "/campaigns",
            json_body={k: v for k, v in UNEQUIPPED.items() if k != "wait"},
        ).json()
        assert receipt["mode"] in ("inline", "complete")
        deadline = time.time() + 30
        while True:
            body = client.get(f"/campaigns/{receipt['campaign_id']}").json()
            if body["complete"]:
                break
            assert time.time() < deadline, "campaign never completed"
            time.sleep(0.02)
        assert body["state"] == "done"

    def test_label_round_trips(self, client):
        receipt = client.post(
            "/campaigns", json_body={**UNEQUIPPED, "label": "my-label"}
        ).json()
        body = client.get(f"/campaigns/{receipt['campaign_id']}").json()
        assert body["label"] == "my-label"


class TestErrorPaths:
    def test_unknown_campaign_is_404(self, client):
        for path in (
            "/campaigns/ffffffff",
            "/campaigns/ffffffff/records",
            "/campaigns/ffffffff/diff/eeeeeeee",
        ):
            response = client.get(path)
            assert response.status == 404
            assert "error" in response.json()

    def test_unknown_path_and_method(self, client):
        assert client.get("/nope").status == 404
        assert client.post("/healthz", json_body={}).status == 405
        assert client.request("DELETE", "/campaigns").status == 405

    def test_malformed_spec_is_400(self, client):
        for bad in (
            {"runs": 2},                             # no scenarios
            {**UNEQUIPPED, "runs": -1},              # bad runs
            {**UNEQUIPPED, "typo_key": 1},           # unknown key
            {**UNEQUIPPED, "scenarios": ["nope"]},   # unknown preset
            {**UNEQUIPPED, "scenarios": [[1, 2]]},   # genome too short
            {**UNEQUIPPED, "seed": -3},              # bad seed
            {**UNEQUIPPED, "backend": "distributed"},  # service owns dispatch
            {**SPEC, "preset": "nope"},              # unknown table preset
            [1, 2, 3],                               # not an object
        ):
            response = client.post("/campaigns", json_body=bad)
            assert response.status == 400, bad
            assert "error" in response.json()

    def test_malformed_body_is_400(self, client):
        assert client.post("/campaigns", body=b"{not json").status == 400
        assert client.post("/campaigns").status == 400  # empty body

    def test_malformed_where_and_params_are_400(self, client):
        cid = client.post("/campaigns", json_body=UNEQUIPPED).json()[
            "campaign_id"
        ]
        bad = client.get(f"/campaigns/{cid}/records?where=1;DROP TABLE x")
        assert bad.status == 400
        assert client.get(
            f"/campaigns/{cid}/records?limit=banana"
        ).status == 400
        assert client.get(
            f"/campaigns/{cid}/records?offset=-1"
        ).status == 400

    def test_baseline_errors(self, client):
        assert client.post(
            "/watchlist/baseline", json_body={"campaign_id": "ffffffff"}
        ).status == 404
        assert client.post(
            "/watchlist/baseline", json_body={"wrong": "shape"}
        ).status == 400


class TestWatchlist:
    def test_degraded_table_fires_regression_alert(self, client):
        baseline = client.post(
            "/campaigns", json_body={**SPEC, "label": "baseline"}
        ).json()
        pinned = client.post(
            "/watchlist/baseline",
            json_body={"campaign_id": baseline["campaign_id"][:12]},
        ).json()
        assert pinned["baseline"] == baseline["campaign_id"]

        client.post(
            "/campaigns",
            json_body={**SPEC, "preset": "degraded", "label": "broken"},
        )
        body = client.get("/alerts?refresh=1").json()
        kinds = {alert["kind"] for alert in body["alerts"]}
        assert "nmac" in kinds
        nmac = next(a for a in body["alerts"] if a["kind"] == "nmac")
        assert nmac["campaign_label"] == "broken"
        assert nmac["value"] > nmac["threshold"] >= nmac["baseline_value"]
        assert "nmac regression" in nmac["message"]

        brief = client.get("/brief")
        assert brief.status == 200
        assert brief.headers["Content-Type"].startswith("text/plain")
        assert "alerts: 1 fired" in brief.text or "fired" in brief.text
        assert "baseline" in brief.text

    def test_incomparable_campaigns_do_not_alert(self, client):
        baseline = client.post(
            "/campaigns", json_body={**SPEC, "label": "baseline"}
        ).json()
        client.post(
            "/watchlist/baseline",
            json_body={"campaign_id": baseline["campaign_id"]},
        )
        # Different scenario list → different scenarios_digest → the
        # rates measure different encounters and must not be compared,
        # however much worse they are.
        client.post(
            "/campaigns",
            json_body={**SPEC, "preset": "degraded",
                       "scenarios": ["head_on"], "label": "other-scn"},
        )
        assert client.get("/alerts?refresh=1").json()["alerts"] == []

    def test_watchlist_ranks_by_risk_and_caches(self, client):
        client.post("/campaigns", json_body=SPEC)
        snap = client.get("/watchlist?refresh=1").json()
        risks = [entry["risk"] for entry in snap["entries"]]
        assert risks == sorted(risks, reverse=True)
        assert snap["records_scanned"] == 2
        cached = client.get("/watchlist").json()
        assert cached["generated_at"] == snap["generated_at"]
        fresh = client.get("/watchlist?refresh=1").json()
        assert fresh["generated_at"] >= snap["generated_at"]

    def test_watchlist_thread_scans_and_stops(self, store, watchlist):
        thread = WatchlistThread(watchlist, interval=0.01)
        thread.start()
        deadline = time.time() + 5
        while thread.scans < 2 and time.time() < deadline:
            time.sleep(0.01)
        thread.stop()
        assert thread.scans >= 2
        assert not thread.is_alive()
        scans_after_stop = thread.scans
        time.sleep(0.05)
        assert thread.scans == scans_after_stop

    def test_watchlist_cli_shape_without_service(self, store, tiny_table):
        # Watchlist is usable standalone (the `repro watchlist` path).
        campaign = Campaign(
            ["head_on"], table=tiny_table, runs_per_scenario=2
        )
        campaign.run(seed=0, store=store)
        watch = Watchlist(store, top=1)
        brief = watch.brief(refresh=True)
        assert "1 campaign(s)" in brief
        assert "none pinned" in brief


class TestQueueMode:
    def test_fallback_worker_drains_submission(self, tmp_path):
        service = CampaignService(
            str(tmp_path / "store.sqlite"),
            queue=str(tmp_path / "queue.sqlite"),
        )
        client = ServiceClient(make_app(service))
        try:
            receipt = client.post(
                "/campaigns", json_body={**UNEQUIPPED, "timeout": 60}
            ).json()
            assert receipt["mode"] == "fallback"
            assert receipt["chunks_enqueued"] >= 1
            progress = receipt["progress"]
            assert progress["complete"] is True
            assert progress["chunks"]["done"] == progress["chunks"]["total"]

            again = client.post(
                "/campaigns",
                json_body={k: v for k, v in UNEQUIPPED.items()
                           if k != "wait"},
            ).json()
            assert again["mode"] == "complete"
        finally:
            service.close()

    def test_workers_endpoint_reports_liveness(self, tmp_path):
        import sqlite3

        queue_path = tmp_path / "queue.sqlite"
        service = CampaignService(
            str(tmp_path / "store.sqlite"), queue=str(queue_path)
        )
        client = ServiceClient(make_app(service))
        try:
            body = client.get("/workers").json()
            assert body["workers"] == [] and body["live"] == []

            # Plant one fresh and one stale liveness row directly (a
            # real worker deregisters on clean exit, so its row would
            # be gone before the assertion).
            now = body["now"]
            with sqlite3.connect(queue_path) as conn:
                conn.execute(
                    "INSERT INTO workers (worker_id, campaign_id,"
                    " started_at, heartbeat) VALUES (?, NULL, ?, ?)",
                    ("fresh-worker", now, now),
                )
                conn.execute(
                    "INSERT INTO workers (worker_id, campaign_id,"
                    " started_at, heartbeat) VALUES (?, NULL, ?, ?)",
                    ("stale-worker", now - 9999, now - 9999),
                )
            body = client.get("/workers").json()
            assert [w["worker_id"] for w in body["workers"]] == [
                "fresh-worker", "stale-worker"
            ]
            assert body["live"] == ["fresh-worker"]
            fresh, stale = body["workers"]
            assert fresh["live"] and not stale["live"]
            assert stale["heartbeat_age"] > fresh["heartbeat_age"]
        finally:
            service.close()

    def test_no_queue_means_no_fleet(self, client):
        body = client.get("/workers").json()
        assert body == {"queue": None, "workers": [], "live": []}


@pytest.mark.slow
class TestLiveSocket:
    def test_submit_and_watch_over_real_http(self, store, tmp_path):
        from urllib.error import HTTPError
        from urllib.request import Request, urlopen

        service = CampaignService(store)
        watchlist = Watchlist(store)
        server = make_http_server(
            make_app(service, watchlist), host="127.0.0.1", port=0
        )
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        base = f"http://{host}:{port}"
        try:
            body = json.dumps(UNEQUIPPED).encode()
            with urlopen(Request(f"{base}/campaigns", data=body,
                                 method="POST"), timeout=30) as response:
                assert response.status == 202
                receipt = json.loads(response.read())
            assert receipt["progress"]["complete"] is True
            cid = receipt["campaign_id"]
            with urlopen(f"{base}/campaigns/{cid}/records?limit=1",
                         timeout=30) as response:
                assert json.loads(response.read())["count"] == 1
            with urlopen(f"{base}/brief?refresh=1", timeout=30) as response:
                assert b"watchlist brief" in response.read()
            with pytest.raises(HTTPError) as excinfo:
                urlopen(f"{base}/campaigns/ffffffff", timeout=30)
            assert excinfo.value.code == 404
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.close()
