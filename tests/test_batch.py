"""Tests for the vectorized batch simulator, including the statistical
equivalence check against the agent-based reference engine."""

import numpy as np
import pytest

from repro.encounters import head_on_encounter, tail_approach_encounter
from repro.sim import (
    BatchEncounterSimulator,
    EncounterSimConfig,
    run_encounter,
)
from repro.sim.disturbance import DisturbanceModel
from repro.sim.encounter import make_acas_pair
from repro.sim.sensors import AdsBSensor


@pytest.fixture
def quiet_config():
    return EncounterSimConfig(
        disturbance=DisturbanceModel(vertical_rate_std=0.0),
        sensor=AdsBSensor.noiseless(),
    )


class TestConstruction:
    def test_equipage_validated(self, test_table):
        with pytest.raises(ValueError):
            BatchEncounterSimulator(test_table, equipage="intruder-only")

    def test_equipped_needs_table(self):
        with pytest.raises(ValueError):
            BatchEncounterSimulator(None, equipage="both")

    def test_unequipped_without_table_ok(self):
        BatchEncounterSimulator(None, equipage="none")

    def test_run_count_validated(self, test_table):
        simulator = BatchEncounterSimulator(test_table)
        with pytest.raises(ValueError):
            simulator.run(head_on_encounter(), 0)


class TestDeterministicEquivalence:
    """With zero noise the batch simulator must match the agent engine
    run for run (identical deterministic trajectories)."""

    def test_unequipped_exact_match(self, quiet_config):
        params = head_on_encounter(miss_distance=120.0, vertical_offset=20.0)
        reference = run_encounter(params, config=quiet_config, seed=0)
        batch = BatchEncounterSimulator(None, quiet_config, equipage="none")
        result = batch.run(params, 3, seed=0)
        np.testing.assert_allclose(
            result.min_separation,
            reference.min_separation,
            rtol=1e-9,
        )
        assert bool(result.nmac[0]) == reference.nmac

    def test_equipped_exact_match(self, test_table, quiet_config):
        params = head_on_encounter()
        own, intruder = make_acas_pair(test_table)
        reference = run_encounter(params, own, intruder, quiet_config, seed=0)
        batch = BatchEncounterSimulator(test_table, quiet_config)
        result = batch.run(params, 2, seed=0)
        np.testing.assert_allclose(
            result.min_separation, reference.min_separation, rtol=1e-6
        )
        assert bool(result.own_alerted[0]) == reference.own_alerted
        assert bool(result.intruder_alerted[0]) == reference.intruder_alerted
        assert bool(result.nmac[0]) == reference.nmac


class TestStatisticalEquivalence:
    """With noise on, per-run randomness differs between the two
    implementations, but the distributions must agree."""

    @pytest.mark.parametrize(
        "params",
        [head_on_encounter(), tail_approach_encounter(overtake_speed=2.0)],
        ids=["head-on", "tail"],
    )
    def test_min_separation_distributions_agree(self, test_table, params):
        config = EncounterSimConfig()
        runs = 60
        reference = []
        for seed in range(runs):
            own, intruder = make_acas_pair(test_table)
            result = run_encounter(params, own, intruder, config, seed=seed)
            reference.append(result.min_separation)
        reference = np.array(reference)

        batch = BatchEncounterSimulator(test_table, config)
        result = batch.run(params, runs, seed=123)

        ref_mean = reference.mean()
        batch_mean = result.min_separation.mean()
        pooled_se = np.sqrt(
            reference.var() / runs + result.min_separation.var() / runs
        )
        # Means within 4 standard errors (generous: this is a smoke
        # equivalence check, not a hypothesis test).
        assert abs(ref_mean - batch_mean) < 4.0 * pooled_se + 1e-9


class TestBatchBehaviour:
    def test_result_shapes(self, test_table):
        batch = BatchEncounterSimulator(test_table, EncounterSimConfig())
        result = batch.run(head_on_encounter(), 17, seed=0)
        assert result.num_runs == 17
        for array in (
            result.min_separation,
            result.min_horizontal,
            result.nmac,
            result.own_alerted,
            result.intruder_alerted,
        ):
            assert array.shape == (17,)

    def test_deterministic_given_seed(self, test_table):
        batch = BatchEncounterSimulator(test_table, EncounterSimConfig())
        a = batch.run(head_on_encounter(), 10, seed=5)
        b = batch.run(head_on_encounter(), 10, seed=5)
        np.testing.assert_array_equal(a.min_separation, b.min_separation)

    def test_equipage_ordering(self, test_table):
        # More protection -> larger typical separation on a collision
        # course: both >= own-only >= none (statistically).
        params = head_on_encounter()
        config = EncounterSimConfig()
        runs = 80
        none = BatchEncounterSimulator(None, config, equipage="none").run(
            params, runs, seed=1
        )
        own_only = BatchEncounterSimulator(
            test_table, config, equipage="own-only"
        ).run(params, runs, seed=1)
        both = BatchEncounterSimulator(test_table, config).run(
            params, runs, seed=1
        )
        assert own_only.min_separation.mean() > none.min_separation.mean()
        assert both.nmac_rate <= own_only.nmac_rate + 0.05

    def test_unequipped_never_alerts(self):
        batch = BatchEncounterSimulator(
            None, EncounterSimConfig(), equipage="none"
        )
        result = batch.run(head_on_encounter(), 10, seed=0)
        assert not result.own_alerted.any()
        assert not result.intruder_alerted.any()

    def test_coordination_toggle_runs(self, test_table):
        batch = BatchEncounterSimulator(
            test_table, EncounterSimConfig(), coordination=False
        )
        result = batch.run(head_on_encounter(), 10, seed=0)
        assert result.num_runs == 10

    def test_nmac_rate_property(self, test_table):
        batch = BatchEncounterSimulator(None, EncounterSimConfig(), equipage="none")
        result = batch.run(head_on_encounter(), 50, seed=3)
        assert result.nmac_rate == pytest.approx(result.nmac.mean())
