"""Tests for repro.util.units."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util import units


class TestConstants:
    def test_feet_per_meter(self):
        assert units.FT_PER_M == pytest.approx(3.28084, rel=1e-5)

    def test_nmac_horizontal_is_500_ft(self):
        assert units.meters_to_feet(units.NMAC_HORIZONTAL_M) == pytest.approx(500.0)

    def test_nmac_vertical_is_100_ft(self):
        assert units.meters_to_feet(units.NMAC_VERTICAL_M) == pytest.approx(100.0)

    def test_gravity(self):
        assert units.G == pytest.approx(9.80665)

    def test_1500_fpm_in_mps(self):
        # The CLIMB advisory's 1500 ft/min target.
        assert units.fpm_to_mps(1500.0) == pytest.approx(7.62)

    def test_2500_fpm_in_mps(self):
        assert units.fpm_to_mps(2500.0) == pytest.approx(12.7)

    def test_knot(self):
        assert units.knots_to_mps(1.0) == pytest.approx(0.514444, rel=1e-5)


class TestConversions:
    @given(st.floats(-1e6, 1e6))
    def test_feet_meters_round_trip(self, value):
        assert units.feet_to_meters(units.meters_to_feet(value)) == pytest.approx(
            value, abs=1e-9
        )

    @given(st.floats(-1e5, 1e5))
    def test_fpm_round_trip(self, value):
        assert units.mps_to_fpm(units.fpm_to_mps(value)) == pytest.approx(
            value, abs=1e-9
        )

    def test_zero_maps_to_zero(self):
        assert units.feet_to_meters(0.0) == 0.0
        assert units.fpm_to_mps(0.0) == 0.0
        assert units.knots_to_mps(0.0) == 0.0

    def test_sign_preserved(self):
        assert units.fpm_to_mps(-1500.0) == pytest.approx(-7.62)
        assert units.feet_to_meters(-100.0) < 0
