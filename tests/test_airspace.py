"""Tests for the multi-aircraft airspace simulation."""

import numpy as np
import pytest

from repro.dynamics.aircraft import AircraftState
from repro.sim.airspace import (
    AirspaceSimulation,
    ThreatSelector,
    TrafficConfig,
)


def state(x=0.0, y=0.0, z=1000.0, vx=0.0, vy=0.0, vz=0.0):
    return AircraftState(np.array([x, y, z]), np.array([vx, vy, vz]))


class TestTrafficConfig:
    def test_spawn_count_and_bounds(self):
        config = TrafficConfig()
        rng = np.random.default_rng(0)
        states = config.spawn(20, rng)
        assert len(states) == 20
        for s in states:
            radius = np.hypot(s.position[0], s.position[1])
            assert radius == pytest.approx(config.radius, rel=1e-9)
            assert config.altitude_band[0] <= s.altitude <= config.altitude_band[1]
            speed = np.hypot(s.velocity[0], s.velocity[1])
            assert config.speed_range[0] <= speed <= config.speed_range[1]

    def test_spawned_tracks_point_inward(self):
        config = TrafficConfig(inbound_offset=0.0)
        rng = np.random.default_rng(1)
        for s in config.spawn(10, rng):
            # Velocity roughly opposes position (heading to the centre).
            cos = float(
                s.position[:2] @ s.velocity[:2]
                / (np.linalg.norm(s.position[:2]) * np.linalg.norm(s.velocity[:2]))
            )
            assert cos == pytest.approx(-1.0, abs=1e-9)


class TestThreatSelector:
    def test_prefers_converging_traffic(self):
        selector = ThreatSelector(horizon=40.0)
        own = state(vx=20.0)
        converging = state(x=400.0, vx=-20.0)       # tau = 10
        parallel = state(x=50.0, vx=20.0)           # never converges
        index = selector.select(own, [parallel, converging])
        assert index == 1

    def test_prefers_smaller_tau(self):
        selector = ThreatSelector(horizon=40.0)
        own = state(vx=20.0)
        near = state(x=200.0, vx=-20.0)   # tau = 5
        far = state(x=1200.0, vx=-20.0)   # tau = 30
        assert selector.select(own, [far, near]) == 1

    def test_fallback_to_nearest_when_none_converge(self):
        selector = ThreatSelector(horizon=40.0)
        own = state(vx=20.0)
        near = state(x=100.0, vx=20.0)
        far = state(x=900.0, vx=20.0)
        assert selector.select(own, [far, near]) == 1

    def test_empty_traffic(self):
        assert ThreatSelector(40.0).select(state(), []) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreatSelector(horizon=0.0)


class TestAirspaceSimulation:
    def test_needs_two_aircraft(self, test_table):
        simulation = AirspaceSimulation(test_table)
        with pytest.raises(ValueError):
            simulation.run(1)

    def test_unequipped_run(self):
        simulation = AirspaceSimulation(None)
        result = simulation.run(4, duration=60.0, seed=0)
        assert result.num_aircraft == 4
        assert result.alert_fraction == 0.0
        assert result.min_pair_separation > 0.0

    def test_equipped_run_alerts(self, test_table):
        simulation = AirspaceSimulation(test_table)
        result = simulation.run(6, duration=120.0, seed=0)
        assert result.alert_fraction > 0.0
        assert len(result.alerts_by_aircraft) == 6

    def test_deterministic_given_seed(self, test_table):
        simulation = AirspaceSimulation(test_table)
        a = simulation.run(4, duration=60.0, seed=3)
        b = simulation.run(4, duration=60.0, seed=3)
        assert a.min_pair_separation == b.min_pair_separation
        assert a.nmac_pairs == b.nmac_pairs

    def test_equipped_beats_unequipped_on_average(self, test_table):
        equipped = AirspaceSimulation(test_table)
        unequipped = AirspaceSimulation(None)
        eq_nmacs = sum(
            equipped.run(6, duration=120.0, seed=s).nmac_count
            for s in range(6)
        )
        uneq_nmacs = sum(
            unequipped.run(6, duration=120.0, seed=s).nmac_count
            for s in range(6)
        )
        assert eq_nmacs <= uneq_nmacs

    def test_closest_pair_reported(self, test_table):
        result = AirspaceSimulation(test_table).run(4, duration=60.0, seed=1)
        assert len(result.closest_pair) == 2
        assert result.closest_pair[0] != result.closest_pair[1]
