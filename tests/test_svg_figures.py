"""Tests for the SVG writer and figure regeneration."""

import numpy as np
import pytest

from repro.analysis.figures import (
    fitness_scatter,
    generation_means_figure,
    trajectory_figure,
)
from repro.analysis.svg import Bounds, SvgFigure
from repro.search.ga import GAResult
from repro.sim.trace import TrajectoryTrace
from repro.dynamics.aircraft import AircraftState


class TestBounds:
    def test_of_data(self):
        bounds = Bounds.of([0.0, 10.0], [5.0, 15.0], pad=0.0)
        assert bounds.x_min == 0.0 and bounds.x_max == 10.0
        assert bounds.y_min == 5.0 and bounds.y_max == 15.0

    def test_degenerate_data_widened(self):
        bounds = Bounds.of([3.0, 3.0], [7.0, 7.0])
        assert bounds.x_max > bounds.x_min
        assert bounds.y_max > bounds.y_min

    def test_empty_data(self):
        bounds = Bounds.of([], [])
        assert bounds.x_max > bounds.x_min


class TestSvgFigure:
    def make_figure(self):
        return SvgFigure(
            Bounds(0.0, 10.0, 0.0, 10.0),
            title="T<est>",
            x_label="x",
            y_label="y",
        )

    def test_render_is_valid_svg_shell(self):
        svg = self.make_figure().render()
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert 'xmlns="http://www.w3.org/2000/svg"' in svg

    def test_title_escaped(self):
        svg = self.make_figure().render()
        assert "T&lt;est&gt;" in svg
        assert "<est>" not in svg

    def test_scatter_adds_circles(self):
        figure = self.make_figure()
        figure.scatter([1, 2, 3], [4, 5, 6], label="pts")
        svg = figure.render()
        assert svg.count("<circle") == 3
        assert "pts" in svg  # legend entry

    def test_line_adds_polyline(self):
        figure = self.make_figure()
        figure.line([0, 5, 10], [0, 5, 10])
        assert "<polyline" in figure.render()

    def test_reference_lines_and_annotation(self):
        figure = self.make_figure()
        figure.hline(5.0)
        figure.vline(5.0)
        figure.annotate(1.0, 1.0, "note")
        svg = figure.render()
        assert "note" in svg
        assert "stroke-dasharray" in svg

    def test_coordinate_mapping_flips_y(self):
        figure = self.make_figure()
        low = figure._sy(0.0)
        high = figure._sy(10.0)
        assert high < low  # larger data y is higher on screen

    def test_save(self, tmp_path):
        figure = self.make_figure()
        path = figure.save(tmp_path / "sub" / "fig.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")


def fake_ga_result():
    rng = np.random.default_rng(0)
    generations = [rng.uniform(0, 100, size=(10, 9)) for _ in range(3)]
    fitness = [
        rng.uniform(0, 100, size=10) + 40 * gen for gen in range(3)
    ]
    return GAResult(
        best_genome=generations[-1][0],
        best_fitness=float(max(f.max() for f in fitness)),
        generations=generations,
        fitness_history=fitness,
        evaluations=30,
    )


def fake_trace():
    trace = TrajectoryTrace()
    for t in range(10):
        trace.record(
            float(t),
            AircraftState(np.array([30.0 * t, 0.0, 1000.0 + t]),
                          np.array([30.0, 0.0, 1.0])),
            AircraftState(np.array([900.0 - 30.0 * t, 10.0, 1010.0 - t]),
                          np.array([-30.0, 0.0, -1.0])),
            own_advisory="CLIMB" if t > 5 else "COC",
            intruder_advisory="COC",
        )
    return trace


class TestFigures:
    def test_fitness_scatter(self, tmp_path):
        path = fitness_scatter(fake_ga_result(), tmp_path / "fig6.svg")
        svg = path.read_text()
        assert svg.count("<circle") == 30
        assert "generation 2" in svg

    def test_generation_means(self, tmp_path):
        path = generation_means_figure(fake_ga_result(), tmp_path / "means.svg")
        svg = path.read_text()
        assert "mean" in svg and "max" in svg

    def test_trajectory_figure(self, tmp_path):
        path = trajectory_figure(fake_trace(), tmp_path / "traj.svg")
        assert path.exists()
        plan = path.with_name("traj.plan.svg")
        assert plan.exists()
        profile_svg = path.read_text()
        assert "advisory active" in profile_svg

    def test_trajectory_figure_empty_trace_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            trajectory_figure(TrajectoryTrace(), tmp_path / "x.svg")
