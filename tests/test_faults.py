"""Chaos suite: seeded fault injection through the production seams.

The contract under test is the issue's acceptance criterion: a
campaign executed under a seeded :class:`~repro.faults.FaultPlan` —
worker crashes at every stage of chunk execution, lease churn, busy
storms, torn and duplicated store writes — must finish with a results
digest **bitwise identical** to the undisturbed serial run of the same
campaign and seed.  Planted corruption must be caught by
``ResultStore.verify``, quarantined by ``--repair``, and healed by
resume with *exactly* the damaged scenarios re-simulated.

The crash harness here is in-process: each
:class:`~repro.faults.InjectedWorkerCrash` models one process death
(the worker's lease is left to expire, exactly like a SIGKILL), and
the harness "restarts" the worker with a fresh :class:`Worker` the way
a supervisor would.  Real-subprocess supervision is covered in
``test_supervisor.py``.
"""

import sqlite3
import threading
import time

import pytest

from repro import faults
from repro.distributed import (
    EXIT_HEARTBEAT_DEAD,
    Worker,
    WorkQueue,
)
from repro.encounters import StatisticalEncounterModel
from repro.experiments import Campaign, SampledSource
from repro.faults import (
    FaultPlan,
    FaultRule,
    InjectedWorkerCrash,
)
from repro.service import CampaignService, Watchlist, WatchlistThread, make_app
from repro.service.testing import ServiceClient
from repro.store import ResultStore
from repro.store.spec import results_digest

SCENARIOS = 5
RUNS = 3
SEED = 11

#: Unequipped named-scenario spec for service-level tests (no table).
SERVICE_SPEC = {
    "scenarios": ["head_on", "tail_approach"],
    "runs": 2,
    "seed": 5,
    "equipage": "none",
    "wait": True,
    "timeout": 60,
}


def make_campaign(scenarios: int = SCENARIOS, **kwargs) -> Campaign:
    """A tiny unequipped campaign (no logic table: fast to simulate)."""
    return Campaign(
        SampledSource(StatisticalEncounterModel(), scenarios),
        equipage="none",
        runs_per_scenario=RUNS,
        **kwargs,
    )


@pytest.fixture(autouse=True)
def disarm_faults():
    """No plan leaks into (or out of) any test."""
    faults.clear()
    yield
    faults.clear()


@pytest.fixture
def paths(tmp_path):
    return tmp_path / "queue.sqlite", tmp_path / "store.sqlite"


def drain_with_restarts(queue_path, lease=0.4, max_deaths=20):
    """Drain the queue, restarting after every injected worker death.

    Returns ``(deaths, stats_list)`` — one stats entry per worker
    incarnation that exited cleanly or died.
    """
    deaths = 0
    stats_list = []
    for _ in range(max_deaths + 1):
        worker = Worker(
            queue_path,
            worker_id=f"chaos-{deaths}",
            lease_seconds=lease,
            poll_interval=0.02,
        )
        try:
            stats_list.append(worker.run())
            return deaths, stats_list
        except InjectedWorkerCrash:
            deaths += 1
    raise AssertionError(
        f"worker died more than {max_deaths} times; runaway schedule"
    )


# ----------------------------------------------------------------------
# FaultPlan mechanics
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_times_schedule_fires_exactly_those_calls(self):
        plan = FaultPlan(seed=0, rules=[FaultRule("p", times=(2, 5))])
        fired = [plan.fire("p") is not None for _ in range(6)]
        assert fired == [False, True, False, False, True, False]
        assert plan.calls("p") == 6
        assert plan.fired("p") == 2
        assert [event.call for event in plan.events] == [2, 5]

    def test_rate_schedule_replays_exactly_from_seed(self):
        def pattern(plan, calls=200):
            return [plan.fire("p") is not None for _ in range(calls)]

        rule = FaultRule("p", rate=0.3)
        first = pattern(FaultPlan(seed=7, rules=[rule]))
        again = pattern(FaultPlan(seed=7, rules=[rule]))
        other = pattern(FaultPlan(seed=8, rules=[rule]))
        assert first == again
        assert first != other
        assert 20 < sum(first) < 120  # sanity: the rate is honored

    def test_points_draw_independent_streams(self):
        plan = FaultPlan(
            seed=7,
            rules=[FaultRule("a", rate=0.5), FaultRule("b", rate=0.5)],
        )
        pattern_a = [plan.fire("a") is not None for _ in range(100)]
        pattern_b = [plan.fire("b") is not None for _ in range(100)]
        assert pattern_a != pattern_b

    def test_max_fires_caps_a_rule(self):
        plan = FaultPlan(
            seed=0, rules=[FaultRule("p", rate=1.0, max_fires=3)]
        )
        fires = sum(plan.fire("p") is not None for _ in range(10))
        assert fires == 3

    def test_unruled_points_never_fire_but_are_counted(self):
        plan = FaultPlan(seed=0, rules=[FaultRule("p", times=(1,))])
        assert plan.fire("other") is None
        assert plan.calls("other") == 1
        assert plan.fired("other") == 0

    def test_json_round_trip_preserves_the_schedule(self):
        plan = FaultPlan(
            seed=42,
            rules=[
                FaultRule("a", rate=0.25, max_fires=2, delay=0.5),
                FaultRule("b", times=(1, 3), skew=-2.0),
            ],
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.seed == plan.seed
        assert clone.rules == plan.rules
        for _ in range(50):
            assert (plan.fire("a") is None) == (clone.fire("a") is None)
            assert (plan.fire("b") is None) == (clone.fire("b") is None)

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule("p", rate=1.5)
        with pytest.raises(ValueError):
            FaultRule("p", times=(0,))
        with pytest.raises(ValueError):
            FaultRule("")
        with pytest.raises(ValueError):
            FaultPlan(rules=[FaultRule("p"), FaultRule("p")])

    def test_env_var_arms_a_fresh_process(self, monkeypatch):
        plan = FaultPlan(seed=3, rules=[FaultRule("p", times=(1,))])
        monkeypatch.setenv(faults.PLAN_ENV, plan.to_json())
        faults.clear()  # simulate a fresh process: nothing installed
        active = faults.active_plan()
        assert active is not None
        assert active.rules == plan.rules
        # An explicit install — even of None — overrides the env.
        faults.install(None)
        assert faults.active_plan() is None

    def test_inject_scopes_and_restores(self):
        outer = FaultPlan(seed=1, rules=[FaultRule("p", times=(1,))])
        inner = FaultPlan(seed=2, rules=[FaultRule("q", times=(1,))])
        faults.install(outer)
        with faults.inject(inner):
            assert faults.active_plan() is inner
        assert faults.active_plan() is outer

    def test_hooks_are_noops_without_a_plan(self):
        assert faults.fire("p") is None
        faults.maybe_crash("p")  # must not raise
        assert faults.clock_skew("p") == 0.0


# ----------------------------------------------------------------------
# Queue seam: busy storms
# ----------------------------------------------------------------------
class TestQueueBusyStorm:
    def _submit(self, queue):
        return queue.submit_job(
            "c1", "store.sqlite", b"spec", RUNS, 2,
            [b"chunk0", b"chunk1"],
        )

    def test_transient_storm_is_absorbed_by_the_retry_loop(self, paths):
        queue_path, _ = paths
        plan = FaultPlan(
            seed=0, rules=[FaultRule("queue.write", times=(1, 2))]
        )
        with faults.inject(plan), WorkQueue(queue_path) as queue:
            assert self._submit(queue) == 2
            assert queue.chunk_counts("c1").total == 2
        assert plan.fired("queue.write") == 2

    def test_persistent_storm_finally_surfaces(self, paths):
        queue_path, _ = paths
        # Every retry attempt of one transaction fails: the queue must
        # give up loudly, not spin forever.
        plan = FaultPlan(
            seed=0,
            rules=[FaultRule("queue.write", times=(1, 2, 3, 4, 5))],
        )
        with faults.inject(plan), WorkQueue(queue_path) as queue:
            with pytest.raises(sqlite3.OperationalError):
                self._submit(queue)
            # The queue stays usable once the storm passes.
            assert self._submit(queue) == 2


# ----------------------------------------------------------------------
# Store seam: torn and duplicate writes, verify/repair/heal
# ----------------------------------------------------------------------
class TestStoreIntegrity:
    def test_torn_write_detected_quarantined_and_healed(self, tmp_path):
        campaign = make_campaign()
        serial = campaign.run(seed=SEED)
        plan = FaultPlan(
            seed=0, rules=[FaultRule("store.write.torn", times=(2,))]
        )
        with ResultStore(tmp_path / "store.sqlite") as store:
            with faults.inject(plan):
                campaign.run(seed=SEED, store=store)
            assert plan.fired("store.write.torn") == 1

            report = store.verify()
            assert not report.ok
            assert len(report.corrupt) == 1
            assert "checksum mismatch" in report.corrupt[0].reason
            damaged_index = report.corrupt[0].scenario_index

            repaired = store.verify(repair=True)
            assert repaired.ok and repaired.repaired
            quarantined = store.quarantined()
            assert [row["scenario_index"] for row in quarantined] == [
                damaged_index
            ]

            # Resume re-simulates exactly the quarantined scenario.
            healed = campaign.run(seed=SEED, store=store)
            assert healed.metadata["simulated"] == 1
            assert healed.metadata["loaded"] == SCENARIOS - 1
            assert store.verify().ok
            assert results_digest(healed) == results_digest(serial)

    def test_repair_then_resubmit_heals_through_the_queue(self, paths):
        # The queue-path twin of the serial resume test above: after
        # ``--repair`` the job's chunks are all settled, so a re-submit
        # tops the job up with exactly the quarantined scenarios and a
        # plain worker re-simulates them.
        queue_path, store_path = paths
        campaign = make_campaign()
        serial = make_campaign().run(seed=SEED)
        run = campaign.submit(
            seed=SEED, queue=queue_path, store=store_path, chunk_size=1
        )
        plan = FaultPlan(
            seed=0, rules=[FaultRule("store.write.torn", times=(2,))]
        )
        with faults.inject(plan):
            Worker(queue_path, poll_interval=0.02).run()
        assert plan.fired("store.write.torn") == 1
        with ResultStore(store_path) as store:
            assert not store.verify().ok
            assert store.verify(repair=True).repaired
            damaged = [
                row["scenario_index"] for row in store.quarantined()
            ]
        resubmit = campaign.submit(
            seed=SEED, queue=queue_path, store=store_path, chunk_size=1
        )
        assert resubmit.campaign_id == run.campaign_id
        assert resubmit.chunks_enqueued == len(damaged) == 1
        assert resubmit.already_stored == SCENARIOS - 1
        stats = Worker(queue_path, poll_interval=0.02).run()
        assert stats.chunks_done == 1
        assert stats.records_written == 1  # only the damaged tail
        with ResultStore(store_path) as store:
            assert store.verify().ok
            final = store.resultset(run.campaign_id)
        assert results_digest(final) == results_digest(serial)

    def test_duplicate_delivery_dedups_bitwise(self, tmp_path):
        campaign = make_campaign()
        serial = campaign.run(seed=SEED)
        plan = FaultPlan(
            seed=0,
            rules=[FaultRule("store.write.duplicate", rate=1.0)],
        )
        with ResultStore(tmp_path / "store.sqlite") as store:
            with faults.inject(plan):
                stored = campaign.run(seed=SEED, store=store)
            assert plan.fired("store.write.duplicate") == SCENARIOS
            assert store.verify().ok
            assert results_digest(stored) == results_digest(serial)

    def test_verify_backfills_legacy_rows_without_checksums(
        self, tmp_path
    ):
        campaign = make_campaign()
        with ResultStore(tmp_path / "store.sqlite") as store:
            result = campaign.run(seed=SEED, store=store)
            cid = result.metadata["campaign_id"]
            store._conn.execute(
                "UPDATE records SET checksum = NULL WHERE campaign_id = ?"
                " AND scenario_index = 0",
                (cid,),
            )
            store._conn.commit()
            report = store.verify()
            assert report.missing_checksum == 1
            assert report.ok  # legacy rows are not corruption
            repaired = store.verify(repair=True)
            assert repaired.backfilled == 1
            after = store.verify()
            assert after.missing_checksum == 0 and after.ok


# ----------------------------------------------------------------------
# Worker seam: crashes, heartbeat death, clock skew
# ----------------------------------------------------------------------
class TestWorkerChaos:
    def _submit(self, queue_path, store_path, chunk_size=1):
        campaign = make_campaign()
        run = campaign.submit(
            seed=SEED, queue=queue_path, store=store_path,
            chunk_size=chunk_size,
        )
        return campaign, run

    def test_crash_mid_drain_resumes_bitwise(self, paths):
        queue_path, store_path = paths
        campaign, run = self._submit(queue_path, store_path)
        serial = make_campaign().run(seed=SEED)
        plan = FaultPlan(
            seed=0,
            rules=[FaultRule("worker.crash.mid-drain", times=(1,))],
        )
        with faults.inject(plan):
            deaths, stats_list = drain_with_restarts(queue_path)
        assert deaths == 1
        # The crashed incarnation wrote its chunk's first record before
        # dying; the reclaiming incarnation redelivers it and the store
        # dedups.
        assert sum(s.records_deduped for s in stats_list) >= 1
        with ResultStore(store_path) as store:
            assert store.verify().ok
            final = store.resultset(run.campaign_id)
        assert results_digest(final) == results_digest(serial)

    def test_crash_at_every_stage_still_converges(self, paths):
        queue_path, store_path = paths
        campaign, run = self._submit(queue_path, store_path)
        serial = make_campaign().run(seed=SEED)
        plan = FaultPlan(
            seed=0,
            rules=[
                FaultRule("worker.crash.post-claim", times=(1,)),
                FaultRule("worker.crash.pre-drain", times=(2,)),
                FaultRule("worker.crash.mid-drain", times=(3,)),
            ],
        )
        with faults.inject(plan):
            deaths, _ = drain_with_restarts(queue_path)
        assert deaths == 3
        with ResultStore(store_path) as store:
            assert store.verify().ok
            final = store.resultset(run.campaign_id)
        assert results_digest(final) == results_digest(serial)

    def test_heartbeat_death_exits_with_distinct_status(self, paths):
        from repro.cli import main

        queue_path, store_path = paths
        campaign, run = self._submit(
            queue_path, store_path, chunk_size=SCENARIOS
        )
        plan = FaultPlan(
            seed=0,
            rules=[FaultRule("worker.heartbeat.die", times=(1,))],
        )
        with faults.inject(plan):
            rc = main([
                "worker", "--queue", str(queue_path),
                "--lease", "0.12", "--poll", "0.02",
            ])
        assert rc == EXIT_HEARTBEAT_DEAD
        # The chunk was handed back: a healthy replacement finishes.
        stats = Worker(
            queue_path, lease_seconds=10.0, poll_interval=0.02
        ).run()
        assert stats.chunks_done == 1
        with ResultStore(store_path) as store:
            assert store.verify(campaign_id=run.campaign_id).ok
            final = store.resultset(run.campaign_id)
        assert results_digest(final) == results_digest(
            make_campaign().run(seed=SEED)
        )

    def test_skewed_clock_worker_still_bitwise_correct(self, paths):
        queue_path, store_path = paths
        campaign, run = self._submit(queue_path, store_path)
        serial = make_campaign().run(seed=SEED)
        plan = FaultPlan(
            seed=0,
            rules=[FaultRule(
                "worker.clock.skew", times=(1,), skew=120.0
            )],
        )
        with faults.inject(plan):
            stats = Worker(
                queue_path, lease_seconds=10.0, poll_interval=0.02
            ).run()
        assert stats.chunks_done == SCENARIOS
        with ResultStore(store_path) as store:
            final = store.resultset(run.campaign_id)
        assert results_digest(final) == results_digest(serial)

    @pytest.mark.slow
    def test_randomized_schedules_replay_and_converge(self, paths):
        serial = make_campaign().run(seed=SEED)
        for chaos_seed in (1, 2, 3):
            queue_path, store_path = (
                paths[0].with_suffix(f".{chaos_seed}.sqlite"),
                paths[1].with_suffix(f".{chaos_seed}.sqlite"),
            )
            campaign, run = self._submit(queue_path, store_path)
            # Rate-based chaos, capped so no chunk can hit the queue's
            # poison threshold (MAX_ATTEMPTS) by crash alone.
            plan = FaultPlan(
                seed=chaos_seed,
                rules=[
                    FaultRule("worker.crash.post-claim", rate=0.2,
                              max_fires=2),
                    FaultRule("worker.crash.mid-drain", rate=0.2,
                              max_fires=2),
                    FaultRule("queue.write", rate=0.05, max_fires=3),
                    FaultRule("store.write.duplicate", rate=0.3),
                ],
            )
            with faults.inject(plan):
                drain_with_restarts(queue_path)
            with ResultStore(store_path) as store:
                assert store.verify().ok
                final = store.resultset(run.campaign_id)
            assert results_digest(final) == results_digest(serial), (
                f"chaos seed {chaos_seed} diverged"
            )


# ----------------------------------------------------------------------
# Queue gc racing a live fleet (satellite: gc never drops live work)
# ----------------------------------------------------------------------
class TestGcUnderChaos:
    def test_gc_racing_slow_commit_fleet_drops_nothing(self, paths):
        queue_path, store_path = paths
        campaign = make_campaign()
        serial = campaign.run(seed=SEED)
        run = campaign.submit(
            seed=SEED, queue=queue_path, store=store_path, chunk_size=1
        )
        cid = run.campaign_id
        plan = FaultPlan(
            seed=0,
            rules=[FaultRule("queue.commit", rate=1.0, delay=0.02)],
        )
        errors = []

        def drain():
            try:
                drain_with_restarts(queue_path)
            except Exception as error:  # surfaced after the join
                errors.append(error)

        with faults.inject(plan):
            worker_thread = threading.Thread(target=drain)
            worker_thread.start()
            gc_passes = 0
            with WorkQueue(queue_path) as admin:
                while worker_thread.is_alive():
                    before = admin.chunk_counts(cid)
                    admin.gc()
                    after = admin.chunk_counts(cid)
                    # Whatever gc did, no actionable chunk vanished.
                    assert after.total >= before.pending + before.claimed
                    gc_passes += 1
                    time.sleep(0.01)
            worker_thread.join()
        assert not errors, errors
        assert gc_passes > 0
        assert plan.fired("queue.commit") > 0  # the fault was live
        with ResultStore(store_path) as store:
            assert store.verify(campaign_id=cid).ok
            final = store.resultset(cid)
        assert results_digest(final) == results_digest(serial)


# ----------------------------------------------------------------------
# Service seam: submit retry + watchlist health surfacing
# ----------------------------------------------------------------------
class TestServiceUnderChaos:
    def test_transient_submit_fault_is_retried(self, tmp_path):
        service = CampaignService(
            str(tmp_path / "store.sqlite"),
            queue=str(tmp_path / "queue.sqlite"),
        )
        try:
            plan = FaultPlan(
                seed=0,
                rules=[FaultRule("service.submit", times=(1, 2))],
            )
            with faults.inject(plan):
                receipt = service.submit(dict(SERVICE_SPEC))
            assert plan.fired("service.submit") == 2
            assert receipt["campaign_id"]
            assert receipt["progress"]["complete"] is True
        finally:
            service.close()

    def test_wedged_queue_finally_propagates(self, tmp_path):
        service = CampaignService(
            str(tmp_path / "store.sqlite"),
            queue=str(tmp_path / "queue.sqlite"),
        )
        try:
            plan = FaultPlan(
                seed=0,
                rules=[FaultRule("service.submit", rate=1.0)],
            )
            with faults.inject(plan):
                with pytest.raises(sqlite3.OperationalError):
                    service.submit(dict(SERVICE_SPEC))
            # Once the fault clears, the same submission succeeds.
            receipt = service.submit(dict(SERVICE_SPEC))
            assert receipt["campaign_id"]
        finally:
            service.close()

    def test_healthz_surfaces_watchlist_scan_failures(self):
        with ResultStore(":memory:") as store:
            service = CampaignService(store)
            try:
                watchlist = Watchlist(store)
                client = ServiceClient(make_app(service, watchlist))
                health = client.get("/healthz").json()["watchlist"]
                assert health["scans"] == 0
                assert health["last_error"] is None

                def boom():
                    raise RuntimeError("scan exploded")

                watchlist._refresh = boom
                with pytest.raises(RuntimeError):
                    watchlist.refresh()
                health = client.get("/healthz").json()["watchlist"]
                assert health["failures"] == 1
                assert health["consecutive_failures"] == 1
                assert health["last_error"] == (
                    "RuntimeError: scan exploded"
                )
                assert health["last_error_at"] is not None

                del watchlist._refresh  # restore the real scan
                watchlist.refresh()
                health = client.get("/healthz").json()["watchlist"]
                assert health["scans"] == 1
                assert health["consecutive_failures"] == 0
                assert health["failures"] == 1  # history is kept
            finally:
                service.close()

    def test_watchlist_thread_survives_failing_scans(self, capsys):
        with ResultStore(":memory:") as store:
            watchlist = Watchlist(store)

            def boom():
                raise RuntimeError("scan exploded")

            watchlist._refresh = boom
            thread = WatchlistThread(watchlist, interval=0.01)
            thread.start()
            deadline = time.time() + 5
            while (
                watchlist.scan_health()["failures"] < 2
                and time.time() < deadline
            ):
                time.sleep(0.01)
            assert thread.is_alive()  # failures never kill the loop
            thread.stop()
            health = watchlist.scan_health()
            assert health["failures"] >= 2
            assert health["consecutive_failures"] == health["failures"]
            assert "scan exploded" in health["last_error"]
