"""Tests for the scenario generator and the statistical encounter model."""

import numpy as np
import pytest

from repro.encounters.encoding import PARAMETER_NAMES
from repro.encounters.generator import ParameterRanges, ScenarioGenerator
from repro.encounters.statistical import StatisticalEncounterModel
from repro.util.units import NMAC_HORIZONTAL_M, NMAC_VERTICAL_M


class TestParameterRanges:
    def test_defaults_bound_near_collision_cpa(self):
        ranges = ParameterRanges()
        assert ranges.cpa_horizontal_distance[1] == pytest.approx(
            NMAC_HORIZONTAL_M
        )
        assert ranges.cpa_vertical_distance == (
            -NMAC_VERTICAL_M, NMAC_VERTICAL_M
        )

    def test_lows_highs_order(self):
        ranges = ParameterRanges()
        lows, highs = ranges.lows(), ranges.highs()
        assert lows.shape == (9,)
        assert np.all(highs >= lows)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            ParameterRanges(own_ground_speed=(50.0, 15.0))

    def test_clip_and_contains(self):
        ranges = ParameterRanges()
        genome = ranges.lows() - 1.0
        assert not ranges.contains(genome)
        clipped = ranges.clip(genome)
        assert ranges.contains(clipped)


class TestScenarioGenerator:
    def test_random_genome_in_ranges(self):
        generator = ScenarioGenerator()
        for seed in range(10):
            genome = generator.random_genome(seed)
            assert generator.ranges.contains(genome)

    def test_random_genomes_shape(self):
        genomes = ScenarioGenerator().random_genomes(7, seed=0)
        assert genomes.shape == (7, 9)

    def test_deterministic_given_seed(self):
        g = ScenarioGenerator()
        np.testing.assert_array_equal(
            g.random_genome(123), g.random_genome(123)
        )

    def test_random_encounters_decodable(self):
        encounters = ScenarioGenerator().random_encounters(5, seed=1)
        assert len(encounters) == 5
        for params in encounters:
            assert params.time_to_cpa >= 20.0

    def test_describe_lists_all_parameters(self):
        description = ScenarioGenerator().describe()
        assert set(description) == set(PARAMETER_NAMES)

    def test_uniform_coverage(self):
        # Sampled values should span most of each range.
        generator = ScenarioGenerator()
        genomes = generator.random_genomes(500, seed=2)
        lows, highs = generator.ranges.lows(), generator.ranges.highs()
        spans = (genomes.max(axis=0) - genomes.min(axis=0)) / (highs - lows)
        assert np.all(spans > 0.9)


class TestStatisticalModel:
    def test_sample_count(self):
        model = StatisticalEncounterModel()
        assert len(model.sample(25, seed=0)) == 25

    def test_speeds_within_bounds(self):
        model = StatisticalEncounterModel()
        for params in model.sample(200, seed=1):
            assert model.min_speed <= params.own_ground_speed <= model.max_speed
            assert (
                model.min_speed
                <= params.intruder_ground_speed
                <= model.max_speed
            )

    def test_vertical_speeds_clipped(self):
        model = StatisticalEncounterModel()
        for params in model.sample(200, seed=2):
            assert abs(params.own_vertical_speed) <= model.max_vs
            assert abs(params.intruder_vertical_speed) <= model.max_vs

    def test_level_mode_dominates(self):
        # With level_fraction 0.6, most vertical speeds are near zero.
        model = StatisticalEncounterModel()
        vs = np.array(
            [p.own_vertical_speed for p in model.sample(1000, seed=3)]
        )
        assert np.mean(np.abs(vs) < 1.0) > 0.5

    def test_cpa_offsets_bounded(self):
        model = StatisticalEncounterModel()
        for params in model.sample(200, seed=4):
            assert 0 <= params.cpa_horizontal_distance <= model.max_cpa_horizontal
            assert abs(params.cpa_vertical_distance) <= model.max_cpa_vertical

    def test_deterministic_given_seed(self):
        model = StatisticalEncounterModel()
        a = model.sample(5, seed=9)
        b = model.sample(5, seed=9)
        assert a == b

    def test_tau_window_respected(self):
        model = StatisticalEncounterModel()
        for params in model.sample(100, seed=5):
            assert 20.0 <= params.time_to_cpa <= 40.0
