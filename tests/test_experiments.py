"""Tests for the repeated-trial search comparison harness."""

import numpy as np
import pytest

from repro.encounters.generator import ParameterRanges
from repro.search.experiments import (
    best_so_far,
    compare_ga_and_random,
    time_to_target,
)
from repro.search.ga import GAConfig


class TestCurves:
    def test_best_so_far_monotone(self):
        curve = best_so_far(np.array([3.0, 1.0, 5.0, 2.0]))
        np.testing.assert_allclose(curve, [3.0, 3.0, 5.0, 5.0])

    def test_time_to_target(self):
        fitnesses = np.array([1.0, 2.0, 7.0, 3.0])
        assert time_to_target(fitnesses, 5.0) == 2
        assert time_to_target(fitnesses, 7.0) == 2
        assert time_to_target(fitnesses, 100.0) is None


def structured_fitness_factory(trial_seed: int):
    """Deterministic structured fitness with mild per-trial noise."""
    ranges = ParameterRanges()
    mid = (ranges.lows() + ranges.highs()) / 2.0
    widths = ranges.highs() - ranges.lows()
    rng = np.random.default_rng(trial_seed)

    def fitness(genome: np.ndarray) -> float:
        z = (genome - mid) / widths
        return float(100.0 - 200.0 * np.sum(z * z) + rng.normal(0, 0.5))

    return fitness


class TestComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return compare_ga_and_random(
            ParameterRanges(),
            structured_fitness_factory,
            GAConfig(population_size=20, generations=5),
            repetitions=4,
            target=80.0,
            seed=0,
        )

    def test_budget_and_shape(self, result):
        assert result.budget == 100
        assert result.repetitions == 4
        assert result.ga.best_fitnesses.shape == (4,)
        assert len(result.random.hit_times) == 4

    def test_ga_outperforms_random_on_structured_landscape(self, result):
        assert result.ga.mean_best > result.random.mean_best

    def test_hit_statistics_sane(self, result):
        for trials in (result.ga, result.random):
            assert 0.0 <= trials.hit_rate <= 1.0
            assert 0.0 < trials.mean_hit_time(result.budget) <= result.budget

    def test_summary_mentions_both_methods(self, result):
        text = result.summary()
        assert "GA" in text
        assert "random" in text

    def test_repetitions_validated(self):
        with pytest.raises(ValueError):
            compare_ga_and_random(
                ParameterRanges(),
                structured_fitness_factory,
                GAConfig(population_size=4, generations=2),
                repetitions=0,
            )
