"""Tests for the online controller and the coordination protocol."""

import numpy as np
import pytest

from repro.acasx.advisories import AdvisorySense, CLIMB, COC, DESCEND
from repro.acasx.controller import AcasXuController, CoordinationChannel
from repro.dynamics.aircraft import AircraftState


def state(x=0.0, y=0.0, z=1000.0, vx=0.0, vy=0.0, vz=0.0):
    return AircraftState(np.array([x, y, z]), np.array([vx, vy, vz]))


class TestCoordinationChannel:
    def test_announce_and_read(self):
        channel = CoordinationChannel()
        channel.announce("a", AdvisorySense.UP)
        assert channel.forbidden_senses("b") == [AdvisorySense.UP]
        assert channel.forbidden_senses("a") == []

    def test_none_releases_lock(self):
        channel = CoordinationChannel()
        channel.announce("a", AdvisorySense.DOWN)
        channel.announce("a", AdvisorySense.NONE)
        assert channel.forbidden_senses("b") == []

    def test_locked_sense_query(self):
        channel = CoordinationChannel()
        assert channel.locked_sense("a") is AdvisorySense.NONE
        channel.announce("a", AdvisorySense.UP)
        assert channel.locked_sense("a") is AdvisorySense.UP

    def test_reset(self):
        channel = CoordinationChannel()
        channel.announce("a", AdvisorySense.UP)
        channel.reset()
        assert channel.forbidden_senses("b") == []


class TestConflictDetection:
    def test_head_on_conflict_detected(self, test_table):
        controller = AcasXuController(test_table)
        own = state(vx=30.0)
        intruder = state(x=600.0, vx=-30.0)  # CPA in 10 s, dead ahead
        tau, miss, in_conflict = controller._conflict_geometry(own, intruder)
        assert in_conflict
        assert tau == pytest.approx(10.0)
        assert miss == pytest.approx(0.0, abs=1e-9)

    def test_diverging_not_in_conflict(self, test_table):
        controller = AcasXuController(test_table)
        own = state(vx=-30.0)
        intruder = state(x=600.0, vx=30.0)
        __, __, in_conflict = controller._conflict_geometry(own, intruder)
        assert not in_conflict

    def test_beyond_horizon_not_in_conflict(self, test_table):
        controller = AcasXuController(test_table)
        horizon = test_table.config.horizon
        own = state(vx=1.0)
        intruder = state(x=10.0 * horizon, vx=-1.0)  # tau = 5*horizon
        tau, __, in_conflict = controller._conflict_geometry(own, intruder)
        assert not in_conflict
        assert tau > horizon

    def test_wide_miss_not_in_conflict(self, test_table):
        controller = AcasXuController(test_table)
        own = state(vx=30.0)
        intruder = state(x=300.0, y=2000.0, vx=-30.0)
        __, miss, in_conflict = controller._conflict_geometry(own, intruder)
        assert not in_conflict
        assert miss > test_table.config.conflict_horizontal_radius

    def test_slow_closure_tail_chase_not_in_conflict(self, test_table):
        # The paper's challenging geometry: co-located tracks, tiny
        # closure -> tau beyond horizon -> the logic sees no conflict.
        controller = AcasXuController(test_table)
        own = state(vx=30.0)
        intruder = state(x=-100.0, vx=31.0)  # overtaking at 1 m/s
        tau, __, in_conflict = controller._conflict_geometry(own, intruder)
        assert tau > test_table.config.horizon
        assert not in_conflict


class TestDecide:
    def test_no_conflict_gives_coc(self, test_table):
        controller = AcasXuController(test_table)
        advisory = controller.decide(state(vx=30.0), state(x=-500.0, vx=30.0))
        assert advisory is COC
        assert controller.command() is None

    def test_conflict_eventually_alerts(self, test_table):
        controller = AcasXuController(test_table)
        own = state(vx=30.0)
        intruder = state(x=900.0, vx=-30.0)  # head-on, CPA 15 s
        advisory = controller.decide(own, intruder)
        assert advisory.is_active
        command = controller.command()
        assert command is not None
        assert command.target_rate == pytest.approx(advisory.target_rate)

    def test_decisions_recorded(self, test_table):
        controller = AcasXuController(test_table)
        controller.decide(state(vx=30.0), state(x=900.0, vx=-30.0))
        controller.decide(state(vx=30.0), state(x=870.0, vx=-30.0))
        assert len(controller.decisions) == 2
        assert controller.decisions[1].time == pytest.approx(
            test_table.config.dt
        )

    def test_alert_bookkeeping(self, test_table):
        controller = AcasXuController(test_table)
        controller.decide(state(vx=30.0), state(x=900.0, vx=-30.0))
        assert controller.ever_alerted
        assert controller.alert_steps == 1

    def test_reset_clears_state(self, test_table):
        channel = CoordinationChannel()
        controller = AcasXuController(test_table, "own", channel)
        controller.decide(state(vx=30.0), state(x=900.0, vx=-30.0))
        controller.reset()
        assert controller.current_advisory is COC
        assert controller.decisions == []
        assert channel.locked_sense("own") is AdvisorySense.NONE


class TestCoordinatedPair:
    def test_paired_controllers_choose_complementary_senses(self, test_table):
        channel = CoordinationChannel()
        own_ctrl = AcasXuController(test_table, "own", channel)
        intr_ctrl = AcasXuController(test_table, "intr", channel)
        own = state(vx=30.0)
        intruder = state(x=900.0, vx=-30.0)
        a1 = own_ctrl.decide(own, intruder)
        a2 = intr_ctrl.decide(intruder, own)
        assert a1.is_active
        if a2.is_active:
            assert a2.sense is not a1.sense

    def test_channel_lock_follows_advisory(self, test_table):
        channel = CoordinationChannel()
        controller = AcasXuController(test_table, "own", channel)
        advisory = controller.decide(state(vx=30.0), state(x=900.0, vx=-30.0))
        assert channel.locked_sense("own") is advisory.sense
