"""Tests for the alpha-beta tracker and the tracked-avoidance wrapper."""

import numpy as np
import pytest

from repro.avoidance.base import NoAvoidance
from repro.avoidance.tracked import TrackedAvoidance
from repro.dynamics.aircraft import AircraftState
from repro.estimation.tracker import AlphaBetaFilter, StateTracker


def state(x=0.0, y=0.0, z=1000.0, vx=0.0, vy=0.0, vz=0.0):
    return AircraftState(np.array([x, y, z]), np.array([vx, vy, vz]))


class TestAlphaBetaFilter:
    def test_gain_validation(self):
        with pytest.raises(ValueError):
            AlphaBetaFilter(alpha=0.0)
        with pytest.raises(ValueError):
            AlphaBetaFilter(beta=2.5)

    def test_first_measurement_initializes(self):
        filt = AlphaBetaFilter()
        filt.update(10.0, dt=1.0, measured_velocity=2.0)
        assert filt.position == 10.0
        assert filt.velocity == 2.0

    def test_uninitialized_access_raises(self):
        filt = AlphaBetaFilter()
        assert not filt.initialized
        with pytest.raises(RuntimeError):
            filt.predict(1.0)
        with pytest.raises(RuntimeError):
            __ = filt.position

    def test_tracks_constant_velocity_exactly(self):
        filt = AlphaBetaFilter(alpha=0.5, beta=0.3)
        for t in range(1, 20):
            filt.update(5.0 * t, dt=1.0, measured_velocity=5.0)
        assert filt.position == pytest.approx(5.0 * 19, abs=1e-6)
        assert filt.velocity == pytest.approx(5.0, abs=1e-6)

    def test_smooths_noise(self):
        rng = np.random.default_rng(0)
        filt = AlphaBetaFilter(alpha=0.3, beta=0.1)
        errors = []
        for t in range(1, 200):
            truth = 3.0 * t
            filt.update(truth + rng.normal(0, 5.0), dt=1.0,
                        measured_velocity=3.0 + rng.normal(0, 1.0))
            errors.append(filt.position - truth)
        # Steady-state tracking error must be well below measurement noise.
        assert np.std(errors[50:]) < 5.0

    def test_coast_uses_velocity(self):
        filt = AlphaBetaFilter()
        filt.update(0.0, dt=1.0, measured_velocity=4.0)
        filt.predict(2.0)
        assert filt.position == pytest.approx(8.0)

    def test_velocity_from_positions_when_no_velocity_report(self):
        filt = AlphaBetaFilter(alpha=0.8, beta=0.5)
        for t in range(1, 30):
            filt.update(2.0 * t, dt=1.0)
        assert filt.velocity == pytest.approx(2.0, abs=0.2)

    def test_reset(self):
        filt = AlphaBetaFilter()
        filt.update(5.0, dt=1.0)
        filt.reset()
        assert not filt.initialized


class TestStateTracker:
    def test_update_then_estimate(self):
        tracker = StateTracker()
        estimate = tracker.update(state(x=100.0, vx=-20.0), dt=1.0)
        assert estimate.position[0] == pytest.approx(100.0)
        assert estimate.velocity[0] == pytest.approx(-20.0)

    def test_coast_and_staleness(self):
        tracker = StateTracker(max_coast=3.0)
        tracker.update(state(x=0.0, vx=10.0), dt=1.0)
        for __ in range(3):
            tracker.coast(1.0)
        assert not tracker.is_stale
        tracker.coast(1.0)
        assert tracker.is_stale
        assert tracker.estimate().position[0] == pytest.approx(40.0)

    def test_update_clears_staleness(self):
        tracker = StateTracker(max_coast=1.0)
        tracker.update(state(), dt=1.0)
        tracker.coast(2.0)
        assert tracker.is_stale
        tracker.update(state(), dt=1.0)
        assert not tracker.is_stale

    def test_uninitialized_coast_raises(self):
        with pytest.raises(RuntimeError):
            StateTracker().coast(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StateTracker(max_coast=0.0)


class _RecordingAvoidance(NoAvoidance):
    """Records the intruder states it was shown."""

    def __init__(self):
        self.seen = []

    def decide(self, own, sensed_intruder):
        self.seen.append(sensed_intruder)
        return super().decide(own, sensed_intruder)


class TestTrackedAvoidance:
    def test_passes_smoothed_estimate(self):
        inner = _RecordingAvoidance()
        tracked = TrackedAvoidance(inner, dt=1.0)
        tracked.decide(state(), state(x=50.0, vx=-5.0))
        assert len(inner.seen) == 1
        assert inner.seen[0].position[0] == pytest.approx(50.0)

    def test_coasts_through_dropout(self):
        inner = _RecordingAvoidance()
        tracked = TrackedAvoidance(inner, dt=1.0)
        tracked.decide(state(), state(x=50.0, vx=-5.0))
        tracked.decide(state(), None)  # dropped report
        assert len(inner.seen) == 2
        assert inner.seen[1].position[0] == pytest.approx(45.0)

    def test_stale_track_holds_last_maneuver(self):
        inner = _RecordingAvoidance()
        tracked = TrackedAvoidance(
            inner, tracker=__import__(
                "repro.estimation.tracker", fromlist=["StateTracker"]
            ).StateTracker(max_coast=1.0),
            dt=1.0,
        )
        tracked.decide(state(), state(x=50.0, vx=-5.0))
        tracked.decide(state(), None)
        tracked.decide(state(), None)  # now stale
        # The inner algorithm was not consulted on the stale step.
        assert len(inner.seen) == 2

    def test_no_report_ever_no_maneuver(self):
        tracked = TrackedAvoidance(_RecordingAvoidance())
        maneuver = tracked.decide(state(), None)
        assert not maneuver.is_active

    def test_handles_dropout_flag(self):
        assert TrackedAvoidance(NoAvoidance()).handles_dropout
        assert not NoAvoidance().handles_dropout

    def test_reset_propagates(self):
        inner = _RecordingAvoidance()
        tracked = TrackedAvoidance(inner)
        tracked.decide(state(), state(x=10.0))
        tracked.reset()
        assert not tracked.tracker.initialized

    def test_name(self):
        assert TrackedAvoidance(NoAvoidance()).name == "Tracked(NoAvoidance)"

    def test_validation(self):
        with pytest.raises(ValueError):
            TrackedAvoidance(NoAvoidance(), dt=0.0)
