"""Tests for repro.mdp.grid — axes and multilinear interpolation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mdp.grid import Grid, UniformAxis, interp_weights_1d


class TestUniformAxis:
    def test_points_and_step(self):
        axis = UniformAxis("x", 0.0, 10.0, 6)
        np.testing.assert_allclose(axis.points, [0, 2, 4, 6, 8, 10])
        assert axis.step == pytest.approx(2.0)

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            UniformAxis("x", 0.0, 1.0, 1)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            UniformAxis("x", 1.0, 0.0, 5)

    def test_clip(self):
        axis = UniformAxis("x", -1.0, 1.0, 3)
        np.testing.assert_allclose(axis.clip(np.array([-5, 0, 5])), [-1, 0, 1])

    def test_index_of_grid_point(self):
        axis = UniformAxis("x", 0.0, 4.0, 5)
        assert axis.index_of(3.0) == 3

    def test_index_of_off_grid_raises(self):
        axis = UniformAxis("x", 0.0, 4.0, 5)
        with pytest.raises(ValueError):
            axis.index_of(2.5)


class TestInterpWeights1d:
    def test_at_grid_points(self):
        points = np.array([0.0, 1.0, 2.0])
        lo, hi, w = interp_weights_1d(points, np.array([0.0, 1.0, 2.0]))
        np.testing.assert_allclose(w * (points[hi] - points[lo]) + points[lo],
                                   [0.0, 1.0, 2.0])

    def test_midpoint(self):
        points = np.array([0.0, 2.0])
        lo, hi, w = interp_weights_1d(points, np.array([1.0]))
        assert lo[0] == 0 and hi[0] == 1
        assert w[0] == pytest.approx(0.5)

    def test_clipping_below_and_above(self):
        points = np.array([0.0, 1.0])
        lo, hi, w = interp_weights_1d(points, np.array([-3.0, 9.0]))
        assert w[0] == pytest.approx(0.0)
        assert w[1] == pytest.approx(1.0)

    @given(st.floats(-20, 20))
    def test_weight_always_in_unit_interval(self, value):
        points = np.linspace(-5, 5, 11)
        __, __, w = interp_weights_1d(points, np.array([value]))
        assert 0.0 <= w[0] <= 1.0


@pytest.fixture
def grid_2d():
    return Grid(
        [UniformAxis("a", 0.0, 1.0, 3), UniformAxis("b", -1.0, 1.0, 5)]
    )


class TestGrid:
    def test_shape_and_size(self, grid_2d):
        assert grid_2d.shape == (3, 5)
        assert grid_2d.size == 15
        assert grid_2d.ndim == 2

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            Grid([])

    def test_axis_lookup(self, grid_2d):
        assert grid_2d.axis("b").num == 5
        with pytest.raises(KeyError):
            grid_2d.axis("missing")

    def test_flat_and_multi_index_round_trip(self, grid_2d):
        flat = np.arange(grid_2d.size)
        multi = grid_2d.multi_index(flat)
        recovered = grid_2d.flat_index(multi)
        np.testing.assert_array_equal(recovered, flat)

    def test_points_cover_grid(self, grid_2d):
        points = grid_2d.points()
        assert points.shape == (15, 2)
        # First axis varies slowest (C order).
        np.testing.assert_allclose(points[0], [0.0, -1.0])
        np.testing.assert_allclose(points[-1], [1.0, 1.0])

    def test_interpolate_exact_at_grid_points(self, grid_2d):
        values = np.arange(grid_2d.size, dtype=float)
        points = grid_2d.points()
        result = grid_2d.interpolate(values, points)
        np.testing.assert_allclose(result, values, atol=1e-12)

    def test_interpolate_linear_function_exactly(self, grid_2d):
        # Multilinear interpolation reproduces affine functions exactly.
        points = grid_2d.points()
        values = 2.0 * points[:, 0] - 3.0 * points[:, 1] + 0.5
        queries = np.array([[0.3, 0.2], [0.9, -0.7], [0.5, 0.0]])
        expected = 2.0 * queries[:, 0] - 3.0 * queries[:, 1] + 0.5
        np.testing.assert_allclose(
            grid_2d.interpolate(values, queries), expected, atol=1e-12
        )

    def test_weights_sum_to_one(self, grid_2d):
        queries = np.array([[0.123, 0.456], [-9.0, 9.0], [0.5, -0.5]])
        __, weights = grid_2d.interp_table(queries)
        np.testing.assert_allclose(weights.sum(axis=1), 1.0, atol=1e-12)

    def test_out_of_range_clipped(self, grid_2d):
        values = np.arange(grid_2d.size, dtype=float)
        inside = grid_2d.interpolate(values, np.array([[1.0, 1.0]]))
        outside = grid_2d.interpolate(values, np.array([[99.0, 99.0]]))
        np.testing.assert_allclose(inside, outside)

    def test_wrong_dimension_raises(self, grid_2d):
        with pytest.raises(ValueError):
            grid_2d.interp_table(np.zeros((2, 3)))

    def test_wrong_value_count_raises(self, grid_2d):
        with pytest.raises(ValueError):
            grid_2d.interpolate(np.zeros(3), np.zeros((1, 2)))

    @settings(max_examples=50)
    @given(
        st.floats(-0.5, 1.5),
        st.floats(-1.5, 1.5),
    )
    def test_interpolation_within_value_bounds(self, qa, qb, ):
        grid = Grid(
            [UniformAxis("a", 0.0, 1.0, 4), UniformAxis("b", -1.0, 1.0, 4)]
        )
        rng = np.random.default_rng(0)
        values = rng.uniform(-10, 10, size=grid.size)
        result = grid.interpolate(values, np.array([[qa, qb]]))
        assert values.min() - 1e-9 <= result[0] <= values.max() + 1e-9

    def test_repr(self, grid_2d):
        assert "a[0.0:1.0:3]" in repr(grid_2d)
