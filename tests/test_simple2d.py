"""Tests for the Section III toy model (repro.simple2d).

Covers the paper's stated parameters (costs 10000/100/+50, the noise
distributions), solver cross-checks on the full-state MDP, and the
behavioural claim the example exists to demonstrate: the generated
logic table avoids collisions better than doing nothing, at reasonable
maneuver cost.
"""

import numpy as np
import pytest

from repro.mdp.policy_iteration import policy_iteration
from repro.mdp.value_iteration import value_iteration
from repro.simple2d import (
    LEVEL_OFF,
    MOVE_DOWN,
    MOVE_UP,
    Simple2DConfig,
    Simple2DModel,
    Simple2DSimulator,
    render_episode,
)
from repro.simple2d.simulator import always_level


@pytest.fixture(scope="module")
def model():
    return Simple2DModel()


@pytest.fixture(scope="module")
def table(model):
    return model.solve()


class TestConfig:
    def test_paper_costs_are_defaults(self):
        config = Simple2DConfig()
        assert config.collision_cost == 10_000.0
        assert config.maneuver_cost == 100.0
        assert config.level_reward == 50.0

    def test_paper_noise_is_default(self):
        config = Simple2DConfig()
        assert config.own_intended_p == 0.7
        assert dict(config.intruder_noise) == {
            0: 0.5, -1: 0.15, 1: 0.15, -2: 0.1, 2: 0.1
        }

    def test_rejects_unnormalized_own_noise(self):
        with pytest.raises(ValueError):
            Simple2DConfig(own_intended_p=0.9, own_stay_p=0.2, own_opposite_p=0.1)

    def test_rejects_unnormalized_intruder_noise(self):
        with pytest.raises(ValueError):
            Simple2DConfig(intruder_noise=((0, 0.5), (1, 0.1)))

    def test_rejects_nonpositive_grid(self):
        with pytest.raises(ValueError):
            Simple2DConfig(y_max=0)


class TestModelStructure:
    def test_state_indexing_round_trip(self, model):
        for index in range(model.num_y ** 2):
            y_own, y_intr = model.stage_state_of(index)
            assert model.stage_state_index(y_own, y_intr) == index

    def test_outcomes_sum_to_one(self, model):
        for action in (LEVEL_OFF, MOVE_UP, MOVE_DOWN):
            total = sum(p for _, p in model.own_outcomes(action))
            assert total == pytest.approx(1.0)
        assert sum(p for _, p in model.intruder_outcomes()) == pytest.approx(1.0)

    def test_move_up_distribution_matches_paper(self, model):
        # {(0,1) -> 0.7, (0,0) -> 0.2, (0,-1) -> 0.1}
        outcomes = dict(model.own_outcomes(MOVE_UP))
        assert outcomes[1] == pytest.approx(0.7)
        assert outcomes[0] == pytest.approx(0.2)
        assert outcomes[-1] == pytest.approx(0.1)

    def test_action_rewards(self, model):
        assert model.action_reward(LEVEL_OFF) == 50.0
        assert model.action_reward(MOVE_UP) == -100.0
        assert model.action_reward(MOVE_DOWN) == -100.0

    def test_stage_mdp_is_valid(self, model):
        mdp = model.stage_mdp()
        assert mdp.num_states == model.num_y ** 2
        assert mdp.num_actions == 3

    def test_terminal_values_penalize_coaltitude(self, model):
        values = model.terminal_values()
        same = model.stage_state_index(1, 1)
        different = model.stage_state_index(1, -1)
        assert values[same] == -10_000.0
        assert values[different] == 0.0


class TestLogicTable:
    def test_collision_course_triggers_maneuver(self, table):
        # Intruder at the same altitude, one step away: level off risks
        # 50% * collision; the table must dodge.
        assert table.action(0, 1, 0) in (MOVE_UP, MOVE_DOWN)

    def test_far_apart_levels_off(self, table):
        assert table.action(3, 9, -3) == LEVEL_OFF

    def test_after_encounter_levels_off(self, table):
        assert table.action(0, 0, 0) == LEVEL_OFF
        assert table.action(0, -1, 0) == LEVEL_OFF

    def test_values_worse_near_collision(self, table):
        close = table.value(0, 1, 0)
        far = table.value(3, 1, -3)
        assert close < far

    def test_as_policy_round_trip(self, table, model):
        policy = table.as_policy()
        stage_states = model.num_y ** 2
        assert policy.num_states == (model.config.x_max + 1) * stage_states
        # Spot-check one state: x_r=2, y_own=0, y_intr=1.
        flat = 2 * stage_states + model.stage_state_index(0, 1)
        assert policy.action(flat) == table.action(0, 2, 1)

    def test_summary_counts_all_states(self, table, model):
        counts = table.summarize()
        total = sum(counts.values())
        assert total == model.config.x_max * model.num_y ** 2


class TestSolverCrossCheck:
    def test_full_mdp_value_iteration_matches_backward_induction(self, model, table):
        # With discount ~1 the full-state formulation reproduces the
        # stage-wise backward induction values.
        mdp = model.full_mdp()
        result = value_iteration(mdp, discount=1.0 - 1e-9, tolerance=1e-6,
                                 max_iterations=2000)
        stage_states = model.num_y ** 2
        for x_r in (1, 3, 9):
            for stage in range(stage_states):
                y_own, y_intr = model.stage_state_of(stage)
                full_value = result.values[x_r * stage_states + stage]
                assert full_value == pytest.approx(
                    table.value(y_own, x_r, y_intr), rel=1e-4, abs=1e-3
                )

    def test_policy_iteration_agrees_on_full_mdp(self, model):
        mdp = model.full_mdp()
        vi = value_iteration(mdp, discount=0.999, tolerance=1e-10,
                             max_iterations=5000)
        pi = policy_iteration(mdp, discount=0.999)
        np.testing.assert_allclose(pi.values, vi.values, atol=1e-4)


class TestSimulator:
    def test_collision_only_possible_at_zero_separation(self):
        sim = Simple2DSimulator()
        result = sim.run_episode(always_level, y_own=3, y_intruder=-3, seed=0)
        # From maximum initial separation, a collision requires closing
        # 6 cells in 9 steps — possible but the track data must be
        # consistent with the verdict either way.
        final_own = result.own_track[-1][1]
        final_intr = result.intruder_track[-1][1]
        assert result.collided == (final_own == final_intr)

    def test_table_beats_no_avoidance(self, table):
        sim = Simple2DSimulator(table.model)
        base = sim.collision_rate(always_level, runs=600, seed=1)
        with_table = sim.collision_rate(table.action, runs=600, seed=2)
        assert with_table < base

    def test_table_maximizes_expected_return(self, table):
        # The solved policy's simulated return beats always-level
        # (which banks +50/step but eats collisions).
        sim = Simple2DSimulator(table.model)
        ret_table = sim.expected_return(table.action, runs=800, seed=3)
        ret_level = sim.expected_return(always_level, runs=800, seed=4)
        assert ret_table > ret_level

    def test_simulated_return_matches_dp_value(self, table):
        # The DP value at the start state predicts the mean simulated
        # return under the optimal policy.
        sim = Simple2DSimulator(table.model)
        predicted = table.value(0, 9, 0)
        measured = sim.expected_return(
            table.action, runs=4000, y_own=0, y_intruder=0, seed=5
        )
        assert measured == pytest.approx(predicted, abs=60.0)

    def test_deterministic_given_seed(self, table):
        sim = Simple2DSimulator(table.model)
        a = sim.run_episode(table.action, seed=42)
        b = sim.run_episode(table.action, seed=42)
        assert a.own_track == b.own_track
        assert a.intruder_track == b.intruder_track

    def test_episode_length(self, table):
        sim = Simple2DSimulator(table.model)
        result = sim.run_episode(table.action, x_r=5, seed=0)
        assert len(result.own_track) == 6  # initial + 5 steps
        assert result.intruder_track[-1][0] == 0

    def test_render_episode_mentions_outcome(self, table):
        sim = Simple2DSimulator(table.model)
        result = sim.run_episode(table.action, seed=3)
        art = render_episode(result)
        assert "outcome:" in art
        assert ("COLLISION" in art) == result.collided
