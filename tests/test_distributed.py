"""Tests for lease-based distributed campaign execution.

The contract under test is the acceptance criterion of the subsystem:
a campaign executed by independent worker processes through
``repro.distributed`` produces a :class:`~repro.experiments.ResultSet`
**bitwise identical** to the serial storeless run of the same campaign
and seed — including across worker crashes, lease expiry reclaims and
duplicate chunk deliveries — and a re-submitted completed campaign
performs zero new simulations.
"""

import multiprocessing
import pickle
import time
from pathlib import Path

import pytest

from repro.distributed import (
    DistributedExecutor,
    Worker,
    WorkQueue,
    submit,
)
from repro.distributed.queue import MAX_ATTEMPTS
from repro.encounters import StatisticalEncounterModel
from repro.experiments import Campaign, SampledSource
from repro.experiments.campaign import RunRecord, _execute_chunk
from repro.montecarlo import MonteCarloEstimator
from repro.store import ResultStore

SCENARIOS = 5
RUNS = 3
SEED = 11

RUN_FIELDS = (
    "min_separation",
    "min_horizontal",
    "nmac",
    "own_alerted",
    "intruder_alerted",
)


def make_campaign(scenarios: int = SCENARIOS, **kwargs) -> Campaign:
    """A tiny unequipped campaign (no logic table: fast to simulate)."""
    return Campaign(
        SampledSource(StatisticalEncounterModel(), scenarios),
        equipage="none",
        runs_per_scenario=RUNS,
        **kwargs,
    )


def fleet_options(queue_path, store_path, **extra) -> dict:
    """backend_options for a fast test-sized "distributed" backend."""
    options = {
        "queue": str(queue_path),
        "store": str(store_path),
        "poll_interval": 0.02,
        "lease_seconds": 10.0,
    }
    options.update(extra)
    return options


def assert_bitwise_equal(a, b):
    """Per-record bitwise equality of two result sets."""
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra.index == rb.index
        assert ra.name == rb.name
        assert (ra.params.as_array() == rb.params.as_array()).all()
        for field in RUN_FIELDS:
            assert (
                getattr(ra.runs, field) == getattr(rb.runs, field)
            ).all(), field


@pytest.fixture
def paths(tmp_path):
    return tmp_path / "queue.sqlite", tmp_path / "store.sqlite"


# ----------------------------------------------------------------------
# WorkQueue mechanics
# ----------------------------------------------------------------------
class TestWorkQueue:
    def _enqueue(self, queue, campaign_id="c1", chunks=2):
        return queue.submit_job(
            campaign_id,
            "store.sqlite",
            b"spec",
            RUNS,
            chunks,
            [f"chunk{i}".encode() for i in range(chunks)],
        )

    def test_submit_is_idempotent(self, paths):
        queue_path, _ = paths
        with WorkQueue(queue_path) as queue:
            assert self._enqueue(queue) == 2
            # While chunks are in flight a re-submit enqueues nothing.
            assert self._enqueue(queue) == 0
            assert queue.chunk_counts("c1").total == 2

    def test_settled_job_can_be_topped_up(self, paths):
        # After every chunk settles, a re-submit with fresh payloads
        # appends them as new chunk rows (the repair-resume path: the
        # caller only ships work the store is missing).
        queue_path, _ = paths
        with WorkQueue(queue_path) as queue:
            assert self._enqueue(queue) == 2
            for index in range(2):
                queue.claim("w1", lease_seconds=30)
                queue.release("c1", index, "w1", done=True)
            assert queue.drained("c1")
            assert queue.submit_job(
                "c1", "store.sqlite", b"spec", RUNS, 2, [b"chunk-redo"]
            ) == 1
            tally = queue.chunk_counts("c1")
            assert tally.total == 3 and tally.pending == 1
            assert queue.job("c1").num_chunks == 3
            # The appended chunk claims like any other, at a fresh
            # index past the originals.
            held = queue.claim("w2", lease_seconds=30)
            assert held.chunk_index == 2
            assert held.payload == b"chunk-redo"

    def test_claim_release_cycle(self, paths):
        queue_path, _ = paths
        with WorkQueue(queue_path) as queue:
            self._enqueue(queue)
            first = queue.claim("w1", lease_seconds=30)
            assert first is not None
            assert first.chunk_index == 0
            assert first.attempts == 1
            second = queue.claim("w2", lease_seconds=30)
            assert second.chunk_index == 1
            # Everything claimed: nothing left.
            assert queue.claim("w3", lease_seconds=30) is None
            assert queue.release("w1-chunk", 0, "w1", done=True) is False
            assert queue.release(first.campaign_id, 0, "w1", done=True)
            assert queue.chunk_counts("c1").done == 1
            # Failed execution returns the chunk to pending.
            assert queue.release(second.campaign_id, 1, "w2", done=False)
            assert queue.chunk_counts("c1").pending == 1

    def test_expired_lease_is_reclaimed(self, paths):
        queue_path, _ = paths
        with WorkQueue(queue_path) as queue:
            self._enqueue(queue, chunks=1)
            held = queue.claim("dead-worker", lease_seconds=0.01)
            assert held is not None
            time.sleep(0.05)
            reclaimed = queue.claim("live-worker", lease_seconds=30)
            assert reclaimed is not None
            assert reclaimed.chunk_index == held.chunk_index
            assert reclaimed.attempts == 2
            # The dead worker lost the lease: renew and release refuse.
            assert not queue.renew("c1", 0, "dead-worker", 30)
            assert not queue.release("c1", 0, "dead-worker", done=True)
            # The live worker's completion sticks.
            assert queue.release("c1", 0, "live-worker", done=True)
            assert queue.drained("c1")

    def test_renew_extends_live_lease(self, paths):
        queue_path, _ = paths
        with WorkQueue(queue_path) as queue:
            self._enqueue(queue, chunks=1)
            held = queue.claim("w1", lease_seconds=0.2)
            assert queue.renew("c1", 0, "w1", lease_seconds=60)
            # Renewed past the original deadline: not claimable.
            time.sleep(0.25)
            assert queue.claim("w2", lease_seconds=30) is None
            assert held.worker_id == "w1"

    def test_poison_chunk_fails_after_max_attempts(self, paths):
        queue_path, _ = paths
        with WorkQueue(queue_path) as queue:
            self._enqueue(queue, chunks=1)
            for attempt in range(MAX_ATTEMPTS):
                held = queue.claim(f"w{attempt}", lease_seconds=30)
                assert held is not None
                assert held.attempts == attempt + 1
                queue.release("c1", 0, f"w{attempt}", done=False)
            assert queue.claim("w-final", lease_seconds=30) is None
            tally = queue.chunk_counts("c1")
            assert tally.failed == 1
            assert not queue.drained("c1")

    def test_memory_queue_rejected_for_distribution(self, tmp_path):
        with pytest.raises(ValueError, match="file-backed"):
            submit(
                make_campaign(),
                SEED,
                queue=":memory:",
                store=tmp_path / "s.sqlite",
            )
        with pytest.raises(ValueError, match="file-backed"):
            submit(
                make_campaign(),
                SEED,
                queue=tmp_path / "q.sqlite",
                store=":memory:",
            )


# ----------------------------------------------------------------------
# Coordinator + worker: the bitwise contract
# ----------------------------------------------------------------------
class TestDistributedExecution:
    def test_single_worker_matches_serial_bitwise(self, paths):
        queue_path, store_path = paths
        serial = make_campaign().run(seed=SEED)
        run = submit(
            make_campaign(), SEED,
            queue=queue_path, store=store_path, chunk_size=2,
        )
        assert run.num_scenarios == SCENARIOS
        assert run.chunks_enqueued == 3
        stats = Worker(queue_path, lease_seconds=10, poll_interval=0.02).run()
        assert stats.chunks_done == 3
        assert stats.records_written == SCENARIOS
        assert stats.backends_built == 1
        final = run.wait(timeout=10, poll=0.02)
        assert final.complete
        assert_bitwise_equal(serial, run.collect())

    def test_resubmit_completed_campaign_simulates_nothing(self, paths):
        queue_path, store_path = paths
        run = submit(
            make_campaign(), SEED, queue=queue_path, store=store_path
        )
        Worker(queue_path, poll_interval=0.02).run()
        resubmit = submit(
            make_campaign(), SEED, queue=queue_path, store=store_path
        )
        assert resubmit.campaign_id == run.campaign_id
        assert resubmit.chunks_enqueued == 0
        assert resubmit.already_stored == SCENARIOS
        assert resubmit.simulated == 0
        # A worker pointed at the queue finds nothing to do.
        stats = Worker(queue_path, poll_interval=0.02).run()
        assert stats.chunks_done == 0 and stats.records_written == 0
        assert_bitwise_equal(make_campaign().run(seed=SEED),
                             resubmit.collect())

    def test_partial_store_submits_only_missing_tail(self, paths):
        queue_path, store_path = paths
        # Pre-store a prefix through the ordinary resume path by
        # truncating an iter_records stream.
        with ResultStore(store_path) as store:
            stream = make_campaign().iter_records(seed=SEED, store=store)
            for _ in range(2):
                next(stream)
            stream.close()
        run = submit(
            make_campaign(), SEED,
            queue=queue_path, store=store_path, chunk_size=1,
        )
        assert run.already_stored == 2
        assert run.simulated == SCENARIOS - 2
        assert run.chunks_enqueued == SCENARIOS - 2
        Worker(queue_path, poll_interval=0.02).run()
        assert_bitwise_equal(make_campaign().run(seed=SEED), run.collect())

    def test_collect_before_completion_raises(self, paths):
        queue_path, store_path = paths
        run = submit(
            make_campaign(), SEED, queue=queue_path, store=store_path
        )
        with pytest.raises(RuntimeError, match="wait"):
            run.collect()

    def test_unregistered_backend_rejected(self, paths):
        queue_path, store_path = paths

        class OpaqueBackend:
            name = "opaque"

            def simulate(self, params, num_runs, seed=None):
                raise NotImplementedError

        campaign = make_campaign()
        campaign.backend = OpaqueBackend()
        with pytest.raises(TypeError, match="registry-built"):
            submit(campaign, SEED, queue=queue_path, store=store_path)

    @pytest.mark.slow
    def test_two_worker_processes_match_serial_bitwise(self, paths):
        queue_path, store_path = paths
        serial = make_campaign().run(seed=SEED)
        run = submit(
            make_campaign(), SEED,
            queue=queue_path, store=store_path, chunk_size=1,
        )
        assert run.chunks_enqueued == SCENARIOS
        from repro.distributed import run_workers

        run_workers(queue_path, num_workers=2, lease_seconds=10,
                    poll_interval=0.02)
        final = run.wait(timeout=30, poll=0.05)
        assert final.complete
        collected = run.collect()
        assert_bitwise_equal(serial, collected)
        # Both workers really participated... or at minimum every chunk
        # completed exactly once.
        with WorkQueue(run.queue_path) as queue:
            states = queue.chunk_states(run.campaign_id)
        assert all(state.status == "done" for state in states)


# ----------------------------------------------------------------------
# Fault injection: dead workers, reclaims, duplicate delivery
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_dead_worker_chunk_reclaimed_no_duplicates(self, paths):
        """A worker dies mid-chunk after writing a partial record.

        The chunk's lease expires, a live worker reclaims and fully
        re-executes it (duplicate delivery of the partial record), and
        the final result set is bitwise identical to the serial run
        with no duplicated records.
        """
        queue_path, store_path = paths
        serial = make_campaign().run(seed=SEED)
        run = submit(
            make_campaign(), SEED,
            queue=queue_path, store=store_path, chunk_size=2,
        )
        # Simulate the doomed worker by hand: claim with a tiny lease,
        # execute the chunk, write ONE record, then "crash" (never
        # release, never heartbeat).
        with WorkQueue(queue_path) as queue:
            held = queue.claim("doomed", lease_seconds=0.05)
            assert held is not None
            job = queue.job(held.campaign_id)
            backend = pickle.loads(job.backend_spec).build()
            items = pickle.loads(held.payload)
            work = [(i, params, seed) for i, _, params, seed in items]
            outcomes = _execute_chunk(backend, job.runs_per_scenario, work)
            first_index, first_result = outcomes[0]
            with ResultStore(store_path) as store:
                assert store.add_record(
                    held.campaign_id,
                    RunRecord(
                        index=first_index,
                        name=items[0][1],
                        params=items[0][2],
                        runs=first_result,
                    ),
                )
        time.sleep(0.1)  # the doomed worker's lease expires

        stats = Worker(
            queue_path, worker_id="live", lease_seconds=10,
            poll_interval=0.02,
        ).run()
        final = run.wait(timeout=10, poll=0.02)
        assert final.complete

        # The reclaimed chunk was fully re-executed: its already-stored
        # record arrived again and deduped instead of duplicating.
        assert stats.records_deduped == 1
        assert stats.records_written == SCENARIOS - 1
        with WorkQueue(queue_path) as queue:
            states = queue.chunk_states(run.campaign_id)
        assert all(state.status == "done" for state in states)
        assert any(state.attempts == 2 for state in states)

        with ResultStore(store_path) as store:
            assert len(store.completed_indices(run.campaign_id)) == SCENARIOS
        assert_bitwise_equal(serial, run.collect())

    @pytest.mark.slow
    def test_killed_worker_process_chunk_reclaimed(self, paths):
        """SIGKILL a real worker process mid-run; the fleet recovers."""
        queue_path, store_path = paths
        serial = make_campaign(8).run(seed=SEED)
        run = submit(
            make_campaign(8), SEED,
            queue=queue_path, store=store_path, chunk_size=1,
        )

        def crashy(queue_path):
            # Claims one chunk under a short lease and dies holding it.
            with WorkQueue(queue_path) as queue:
                assert queue.claim("crashy", lease_seconds=0.2) is not None

        victim = multiprocessing.Process(
            target=crashy, args=(str(queue_path),)
        )
        victim.start()
        victim.join()

        stats = Worker(
            queue_path, lease_seconds=5, poll_interval=0.02
        ).run()
        final = run.wait(timeout=30, poll=0.05)
        assert final.complete
        assert stats.records_written == 8
        assert_bitwise_equal(serial, run.collect())


# ----------------------------------------------------------------------
# The store= seam: executor through Campaign / MonteCarloEstimator
# ----------------------------------------------------------------------
class TestDistributedExecutorSeam:
    def test_campaign_run_accepts_executor(self, paths):
        queue_path, store_path = paths
        serial = make_campaign().run(seed=SEED)
        executor = DistributedExecutor(
            queue_path, store_path, workers=0, poll_interval=0.02
        )
        distributed = make_campaign().run(seed=SEED, store=executor)
        assert_bitwise_equal(serial, distributed)
        meta = distributed.metadata
        assert meta["simulated"] == SCENARIOS
        assert meta["loaded"] == 0
        assert "campaign_id" in meta
        assert meta["distributed_workers"] == 0
        # A second run loads everything from the store.
        rerun = make_campaign().run(seed=SEED, store=executor)
        assert rerun.metadata["loaded"] == SCENARIOS
        assert rerun.metadata["simulated"] == 0
        assert_bitwise_equal(serial, rerun)

    def test_campaign_iter_records_accepts_executor(self, paths):
        queue_path, store_path = paths
        serial = list(make_campaign().iter_records(seed=SEED))
        executor = DistributedExecutor(
            queue_path, store_path, workers=0, poll_interval=0.02
        )
        streamed = list(
            make_campaign().iter_records(seed=SEED, store=executor)
        )
        assert [r.index for r in streamed] == [r.index for r in serial]
        for ra, rb in zip(serial, streamed):
            for field in RUN_FIELDS:
                assert (
                    getattr(ra.runs, field) == getattr(rb.runs, field)
                ).all()

    def test_montecarlo_accepts_executor_unchanged(self, paths, tiny_table):
        queue_path, store_path = paths
        model = StatisticalEncounterModel()
        plain = MonteCarloEstimator(
            tiny_table, model, runs_per_encounter=2
        ).estimate(3, seed=5)
        executor = DistributedExecutor(
            queue_path, store_path, workers=0, poll_interval=0.02
        )
        distributed = MonteCarloEstimator(
            tiny_table, model, runs_per_encounter=2, store=executor
        ).estimate(3, seed=5)
        assert distributed.summary() == plain.summary()
        assert_bitwise_equal(
            plain.equipped_results, distributed.equipped_results
        )
        assert_bitwise_equal(
            plain.unequipped_results, distributed.unequipped_results
        )
        # Both arms landed in the shared store under distinct ids.
        with ResultStore(store_path) as store:
            assert len(store.campaigns()) == 2

    def test_executor_fleet_is_scoped_to_its_campaign(self, paths):
        """A shared queue with unrelated in-flight work must not feed
        the executor's fleet other jobs' chunks, nor block its exit on
        their leases."""
        queue_path, store_path = paths
        # An unrelated job: one chunk claimed by an external worker
        # under a long (live) lease, one chunk pending.
        with WorkQueue(queue_path) as queue:
            queue.submit_job(
                "unrelated", str(store_path), b"not-a-real-spec",
                RUNS, 2, [b"chunk-a", b"chunk-b"],
            )
            assert queue.claim(
                "external", lease_seconds=3600, campaign_id="unrelated"
            ) is not None

        executor = DistributedExecutor(
            queue_path, store_path, workers=0, poll_interval=0.02
        )
        serial = make_campaign().run(seed=SEED)
        start = time.time()
        distributed = make_campaign().run(seed=SEED, store=executor)
        assert time.time() - start < 30  # not waiting out the 1h lease
        assert_bitwise_equal(serial, distributed)
        # The unrelated job is untouched: its pending chunk was never
        # claimed (a scoped worker would have choked on the fake spec).
        with WorkQueue(queue_path) as queue:
            tally = queue.chunk_counts("unrelated")
            assert tally.pending == 1 and tally.claimed == 1
            assert tally.failed == 0

    def test_submit_resolves_relative_paths(self, tmp_path, monkeypatch):
        """Workers launch from any cwd: job rows must carry absolute
        paths even when the submitter used relative ones."""
        monkeypatch.chdir(tmp_path)
        run = submit(
            make_campaign(), SEED, queue="q.sqlite", store="s.sqlite"
        )
        assert Path(run.queue_path).is_absolute()
        assert Path(run.store_path).is_absolute()
        with WorkQueue(run.queue_path) as queue:
            job = queue.job(run.campaign_id)
        assert Path(job.store_path).is_absolute()
        # A worker run from elsewhere still drains into the right store.
        monkeypatch.chdir(tmp_path.parent)
        Worker(run.queue_path, poll_interval=0.02).run()
        assert_bitwise_equal(make_campaign().run(seed=SEED), run.collect())

    def test_failed_chunk_records_last_error(self, paths, capsys):
        queue_path, store_path = paths
        with WorkQueue(queue_path) as queue:
            queue.submit_job(
                "poison", str(store_path), b"not-a-pickled-spec",
                RUNS, 1, [b"junk-payload"],
            )
        stats = Worker(
            queue_path, lease_seconds=5, poll_interval=0.01
        ).run(max_chunks=None, idle_timeout=0.1)
        assert stats.chunks_failed >= 1
        assert "failed" in capsys.readouterr().err
        with WorkQueue(queue_path) as queue:
            states = queue.chunk_states("poison")
        assert states[0].last_error  # diagnosis survives on the row

    @pytest.mark.slow
    def test_executor_with_process_fleet(self, paths):
        queue_path, store_path = paths
        serial = make_campaign().run(seed=SEED)
        executor = DistributedExecutor(
            queue_path, store_path, workers=2,
            lease_seconds=10, poll_interval=0.02, chunk_size=1,
        )
        distributed = make_campaign().run(seed=SEED, store=executor)
        assert_bitwise_equal(serial, distributed)
        assert distributed.metadata["distributed_workers"] == 2


# ----------------------------------------------------------------------
# CLI: submit / worker / status / store records / --queue column
# ----------------------------------------------------------------------
class TestDistributedCli:
    BASE = ["--sample", "4", "--runs", "3", "--seed", "7",
            "--equipage", "none"]

    def _submit(self, main, tmp_path, capsys):
        queue = str(tmp_path / "q.sqlite")
        store = str(tmp_path / "s.sqlite")
        assert main(["submit", *self.BASE,
                     "--queue", queue, "--store", store]) == 0
        return queue, store, capsys.readouterr().out

    def test_submit_worker_status_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        queue, store, out = self._submit(main, tmp_path, capsys)
        assert "enqueued 1 chunk(s)" in out

        assert main(["status", queue]) == 0
        assert "1 incomplete" in capsys.readouterr().out

        assert main(["worker", "--queue", queue, "--poll", "0.02"]) == 0
        worker_out = capsys.readouterr().out
        assert "1 chunks done" in worker_out
        assert "4 records written" in worker_out

        assert main(["status", queue]) == 0
        assert "0 incomplete" in capsys.readouterr().out

        # Re-submit: completed campaign enqueues nothing.
        assert main(["submit", *self.BASE,
                     "--queue", queue, "--store", store]) == 0
        resubmit_out = capsys.readouterr().out
        assert "enqueued 0 chunk(s)" in resubmit_out
        assert "already complete" in resubmit_out

    def test_store_list_show_queue_column(self, tmp_path, capsys):
        from repro.cli import main

        queue, store, _ = self._submit(main, tmp_path, capsys)
        assert main(["worker", "--queue", queue, "--poll", "0.02"]) == 0
        capsys.readouterr()

        assert main(["store", "list", store, "--queue", queue]) == 0
        listing = capsys.readouterr().out
        assert "queue" in listing.splitlines()[0]
        assert "0p/0c/1d" in listing

        campaign_id = [
            line.split()[0] for line in listing.splitlines()[1:]
            if line.strip()
        ][0]
        assert main(["store", "show", store, campaign_id,
                     "--queue", queue]) == 0
        shown = capsys.readouterr().out
        assert "queue:     0p/0c/1d" in shown

    def test_store_records_json_and_csv(self, tmp_path, capsys):
        import json as json_module

        from repro.cli import main

        queue, store, _ = self._submit(main, tmp_path, capsys)
        assert main(["worker", "--queue", queue, "--poll", "0.02"]) == 0
        capsys.readouterr()

        assert main(["store", "records", store,
                     "--where", "nmac_rate >= ?", "--params", "0"]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert len(payload) == 4
        assert {"campaign_id", "name", "nmac_rate", "genome"} <= set(
            payload[0]
        )

        out_csv = tmp_path / "records.csv"
        assert main(["store", "records", store, "--format", "csv",
                     "--out", str(out_csv)]) == 0
        lines = out_csv.read_text().strip().splitlines()
        assert lines[0].startswith("campaign_id,index,name,num_runs")
        assert len(lines) == 5


# ----------------------------------------------------------------------
# Clock skew: one time authority per decision + reclaim margin
# ----------------------------------------------------------------------
class TestClockSkew:
    """Lease decisions on a multi-host queue must survive clock skew.

    Each ``WorkQueue`` handle gets an injected clock simulating one
    host; the skew margin and the monotone-renew rule are what keep a
    live worker's chunk from being reclaimed early and a renewing
    worker from sabotaging its own lease.
    """

    BASE = 1_000_000.0

    def _queue_at(self, path, offset=0.0, margin=0.0):
        return WorkQueue(
            path, skew_margin=margin, clock=lambda: self.BASE + offset
        )

    def _enqueue(self, queue, campaign_id="c1", chunks=1):
        queue.submit_job(
            campaign_id, "store.sqlite", b"spec", RUNS, chunks,
            [f"chunk{i}".encode() for i in range(chunks)],
        )

    def test_claim_stamps_with_connection_clock(self, paths):
        queue_path, _ = paths
        with self._queue_at(queue_path) as queue:
            self._enqueue(queue)
            held = queue.claim("w1", lease_seconds=30)
            # Comparison and stamp both came from the injected clock,
            # not from this process's wall clock.
            assert held.lease_expires == self.BASE + 30

    def test_ahead_clock_waits_out_skew_margin(self, paths):
        """A host running ahead must not reclaim a live lease early."""
        queue_path, _ = paths
        with self._queue_at(queue_path) as owner:
            self._enqueue(owner)
            assert owner.claim("w1", lease_seconds=30) is not None
        # 4s past the stamped expiry, but within the 10s margin: the
        # lease may only *look* expired because our clock runs fast.
        with self._queue_at(queue_path, offset=34, margin=10) as ahead:
            assert ahead.claimable() == 0
            assert ahead.claim("w2", lease_seconds=30) is None
        # Past expiry plus the margin: genuinely dead, reclaim.
        with self._queue_at(queue_path, offset=41, margin=10) as later:
            reclaimed = later.claim("w3", lease_seconds=30)
            assert reclaimed is not None
            assert reclaimed.attempts == 2
            assert reclaimed.lease_expires == self.BASE + 41 + 30

    def test_behind_clock_cannot_steal_live_lease(self, paths):
        queue_path, _ = paths
        with self._queue_at(queue_path) as owner:
            self._enqueue(owner)
            assert owner.claim("w1", lease_seconds=30) is not None
        with self._queue_at(queue_path, offset=-100) as behind:
            assert behind.claimable() == 0
            assert behind.claim("w2", lease_seconds=30) is None

    def test_renew_is_monotone_under_behind_clock(self, paths):
        """A behind-clock heartbeat must never *shorten* its lease.

        Without the MAX() in renew, a worker whose clock runs behind
        would stamp an already-past deadline with every heartbeat —
        handing its own live chunk to the next claimant.
        """
        queue_path, _ = paths
        with self._queue_at(queue_path) as owner:
            self._enqueue(owner)
            assert owner.claim("w1", lease_seconds=30) is not None
        with self._queue_at(queue_path, offset=-100) as behind:
            # The behind host renews its own lease: accepted, but the
            # deadline stays at BASE+30 instead of BASE-70.
            assert behind.renew("c1", 0, "w1", lease_seconds=30)
        with self._queue_at(queue_path, offset=25) as honest:
            assert honest.claim("w2", lease_seconds=30) is None
        # A renewal that genuinely extends still moves it forward.
        with self._queue_at(queue_path, offset=10) as later:
            assert later.renew("c1", 0, "w1", lease_seconds=30)
            (state,) = later.chunk_states("c1")
            assert state.lease_expires == self.BASE + 40


# ----------------------------------------------------------------------
# Worker liveness registry
# ----------------------------------------------------------------------
class TestWorkerLiveness:
    def test_claim_attempts_register_heartbeats(self, paths):
        queue_path, _ = paths
        with WorkQueue(queue_path) as queue:
            # Even a fruitless claim on an empty queue says "alive".
            assert queue.claim("roamer", lease_seconds=5) is None
            assert queue.claim(
                "pinned", lease_seconds=5, campaign_id="camp-a"
            ) is None
            live = {w.worker_id for w in queue.live_workers()}
            assert live == {"roamer", "pinned"}
            # Campaign scoping: an unpinned worker serves anyone, a
            # pinned worker only its own campaign.
            serves_a = {
                w.worker_id for w in queue.live_workers("camp-a")
            }
            assert serves_a == {"roamer", "pinned"}
            serves_b = {
                w.worker_id for w in queue.live_workers("camp-b")
            }
            assert serves_b == {"roamer"}
            queue.deregister_worker("roamer")
            assert {w.worker_id for w in queue.live_workers()} == {
                "pinned"
            }

    def test_stale_heartbeats_are_not_live(self, paths):
        queue_path, _ = paths
        base = 2_000_000.0
        with WorkQueue(queue_path, clock=lambda: base) as queue:
            queue.claim("w1", lease_seconds=5)
        with WorkQueue(queue_path, clock=lambda: base + 100) as later:
            assert later.live_workers(ttl=15) == []
            assert len(later.live_workers(ttl=200)) == 1

    def test_worker_run_deregisters_on_exit(self, paths):
        queue_path, _ = paths
        Worker(queue_path, worker_id="transient",
               poll_interval=0.01).run()
        with WorkQueue(queue_path) as queue:
            assert queue.live_workers() == []


# ----------------------------------------------------------------------
# Lost lease: the in-flight result must be abandoned, not drained
# ----------------------------------------------------------------------
class TestLostLeaseAbandonsDrain:
    def test_two_claimants_race_one_chunk(self, paths, monkeypatch):
        """The renew verdict gates the drain path.

        A slow worker simulates a chunk; while it does, a rival (a
        host whose clock says the lease long expired) reclaims the
        chunk, finishes it, and marks it done.  The slow worker's
        pre-drain renew must come back "no longer held" and the worker
        must abandon its result — writing nothing, releasing nothing.
        """
        import repro.distributed.worker as worker_module

        queue_path, store_path = paths
        serial = make_campaign().run(seed=SEED)
        run = submit(
            make_campaign(), SEED, queue=queue_path, store=store_path
        )
        assert run.chunks_enqueued == 1

        real = worker_module._execute_chunk
        stolen_by_rival = {}

        def hijack(backend, num_runs, work):
            outcomes = real(backend, num_runs, work)
            if stolen_by_rival:
                return outcomes
            # While the slow worker was "simulating", a far-ahead host
            # decides the lease expired, reclaims the chunk, executes
            # it and completes it.
            with WorkQueue(
                queue_path, clock=lambda: time.time() + 3600
            ) as rival_queue:
                stolen = rival_queue.claim("rival", lease_seconds=7200)
                assert stolen is not None
                items = pickle.loads(stolen.payload)
                with ResultStore(store_path) as store:
                    for (index, name, params, _), (_, result) in zip(
                        items, outcomes
                    ):
                        store.add_record(
                            stolen.campaign_id,
                            RunRecord(
                                index=index, name=name,
                                params=params, runs=result,
                            ),
                        )
                assert rival_queue.release(
                    stolen.campaign_id, stolen.chunk_index, "rival",
                    done=True,
                )
                stolen_by_rival["chunk"] = stolen.chunk_index
            return outcomes

        monkeypatch.setattr(worker_module, "_execute_chunk", hijack)
        stats = Worker(
            queue_path, worker_id="slow", lease_seconds=10,
            poll_interval=0.01,
        ).run()

        # The slow worker consulted the renew verdict and abandoned.
        assert stats.chunks_lost == 1
        assert stats.chunks_done == 0
        assert stats.records_written == 0
        assert "0 chunks done" in stats.summary()
        assert "1 lost" in stats.summary()

        final = run.wait(timeout=10, poll=0.02)
        assert final.complete
        assert_bitwise_equal(serial, run.collect())


# ----------------------------------------------------------------------
# The "distributed" backend: fleets behind the registry key
# ----------------------------------------------------------------------
class TestDistributedBackend:
    def test_empty_fleet_falls_back_and_matches_serial_bitwise(
        self, paths
    ):
        """Zero live workers: the run completes via the in-process
        fallback worker instead of hanging, bit for bit."""
        queue_path, store_path = paths
        serial = make_campaign().run(seed=SEED)
        distributed = make_campaign(
            backend="distributed",
            backend_options=fleet_options(queue_path, store_path),
        ).run(seed=SEED)
        assert_bitwise_equal(serial, distributed)
        assert distributed.metadata["distributed_fallback"] is True
        assert distributed.metadata["distributed_workers"] == "fleet"
        assert distributed.metadata["simulated"] == SCENARIOS
        assert distributed.metadata["loaded"] == 0

    def test_rerun_loads_everything_from_the_store(self, paths):
        queue_path, store_path = paths
        options = fleet_options(queue_path, store_path)
        first = make_campaign(
            backend="distributed", backend_options=options
        ).run(seed=SEED)
        rerun = make_campaign(
            backend="distributed", backend_options=options
        ).run(seed=SEED)
        assert rerun.metadata["loaded"] == SCENARIOS
        assert rerun.metadata["simulated"] == 0
        assert rerun.metadata["distributed_fallback"] is False
        assert_bitwise_equal(first, rerun)

    def test_provenance_is_transparent(self, paths, tmp_path):
        """A distributed campaign is *the same experiment* as its
        in-process twin: same backend name, same content-addressed
        campaign id (so the two resume from and dedup against each
        other)."""
        queue_path, store_path = paths
        with ResultStore(tmp_path / "plain.sqlite") as plain_store:
            plain = make_campaign().run(seed=SEED, store=plain_store)
        distributed = make_campaign(
            backend="distributed",
            backend_options=fleet_options(queue_path, store_path),
        ).run(seed=SEED)
        assert distributed.backend == plain.backend
        assert (
            distributed.metadata["campaign_id"]
            == plain.metadata["campaign_id"]
        )

    def test_iter_records_streams_the_fleet_result(self, paths):
        queue_path, store_path = paths
        serial = list(make_campaign().iter_records(seed=SEED))
        streamed = list(
            make_campaign(
                backend="distributed",
                backend_options=fleet_options(queue_path, store_path),
            ).iter_records(seed=SEED)
        )
        assert [r.index for r in streamed] == [r.index for r in serial]
        for ra, rb in zip(serial, streamed):
            for field in RUN_FIELDS:
                assert (
                    getattr(ra.runs, field) == getattr(rb.runs, field)
                ).all()

    def test_env_vars_supply_queue_and_store(self, paths, monkeypatch):
        queue_path, store_path = paths
        monkeypatch.setenv("REPRO_QUEUE", str(queue_path))
        monkeypatch.setenv("REPRO_STORE", str(store_path))
        serial = make_campaign().run(seed=SEED)
        distributed = make_campaign(backend="distributed").run(seed=SEED)
        assert_bitwise_equal(serial, distributed)

    def test_missing_queue_and_store_is_a_clear_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUEUE", raising=False)
        monkeypatch.delenv("REPRO_STORE", raising=False)
        with pytest.raises(ValueError, match="queue"):
            make_campaign(backend="distributed")

    def test_conflicting_store_rejected_same_path_accepted(
        self, paths, tmp_path
    ):
        queue_path, store_path = paths
        campaign = make_campaign(
            backend="distributed",
            backend_options=fleet_options(queue_path, store_path),
        )
        with ResultStore(tmp_path / "other.sqlite") as other:
            with pytest.raises(ValueError, match="binds its result"):
                campaign.run(seed=SEED, store=other)
        # Pointing store= at the backend's own store file is harmless.
        with ResultStore(store_path) as same:
            result = campaign.run(seed=SEED, store=same)
        assert_bitwise_equal(make_campaign().run(seed=SEED), result)

    def test_submit_defaults_to_backend_paths(self, paths):
        queue_path, store_path = paths
        campaign = make_campaign(
            backend="distributed",
            backend_options=fleet_options(queue_path, store_path),
        )
        run = campaign.submit(seed=SEED)
        assert run.queue_path == campaign.backend.queue_path
        assert run.store_path == campaign.backend.store_path
        assert run.chunks_enqueued == 1
        # A later run() of the same campaign drains what it submitted.
        result = campaign.run(seed=SEED)
        assert_bitwise_equal(make_campaign().run(seed=SEED), result)

    def test_submit_without_paths_still_requires_them(self):
        with pytest.raises(TypeError, match="queue"):
            make_campaign().submit(seed=SEED)

    def test_backend_spec_roundtrip_carries_fleet_policy(self, paths):
        queue_path, store_path = paths
        from repro.distributed import DistributedBackend
        from repro.experiments import BackendSpec, make_backend

        backend = make_backend(
            "distributed",
            equipage="none",
            queue=str(queue_path),
            store=str(store_path),
            lease_seconds=7.5,
            skew_margin=2.5,
        )
        spec = BackendSpec.capture(backend)
        assert spec.backend == "distributed"
        assert spec.inner == "vectorized-batch"
        assert spec.queue_path == backend.queue_path
        assert spec.store_path == backend.store_path
        assert spec.fleet["lease_seconds"] == 7.5
        rebuilt = pickle.loads(pickle.dumps(spec)).build()
        assert isinstance(rebuilt, DistributedBackend)
        assert rebuilt.queue_path == backend.queue_path
        assert rebuilt.lease_seconds == 7.5
        assert rebuilt.skew_margin == 2.5
        # Workers always receive the *inner* simulation spec.
        assert backend.worker_spec().backend == "vectorized-batch"
        assert backend.provenance_name == "vectorized-batch"

    def test_poison_chunk_raises_with_last_error(
        self, paths, monkeypatch, capsys
    ):
        """A chunk failing MAX_ATTEMPTS raises a diagnosis from
        Campaign.run — it must not hang the wait loop."""
        import repro.distributed.worker as worker_module

        queue_path, store_path = paths

        def explode(backend, num_runs, work):
            raise RuntimeError("boom-payload-xyz")

        monkeypatch.setattr(worker_module, "_execute_chunk", explode)
        campaign = make_campaign(
            backend="distributed",
            backend_options=fleet_options(
                queue_path, store_path, poll_interval=0.01
            ),
        )
        with pytest.raises(RuntimeError) as excinfo:
            campaign.run(seed=SEED)
        message = str(excinfo.value)
        assert "failed permanently" in message
        assert "boom-payload-xyz" in message
        # Read the id from the queue: a re-submit would now *top up*
        # the settled job, re-enqueueing the failed chunks for retry.
        with WorkQueue(queue_path) as queue:
            states = queue.chunk_states(queue.jobs()[0].campaign_id)
        assert all(state.status == "failed" for state in states)
        assert all(state.attempts == MAX_ATTEMPTS for state in states)

    def test_montecarlo_via_backend_key(self, paths, tiny_table):
        queue_path, store_path = paths
        model = StatisticalEncounterModel()
        plain = MonteCarloEstimator(
            tiny_table, model, runs_per_encounter=2
        ).estimate(3, seed=5)
        distributed = MonteCarloEstimator(
            tiny_table,
            model,
            runs_per_encounter=2,
            backend="distributed",
            backend_options=fleet_options(queue_path, store_path),
        ).estimate(3, seed=5)
        assert distributed.summary() == plain.summary()
        assert_bitwise_equal(
            plain.equipped_results, distributed.equipped_results
        )
        assert_bitwise_equal(
            plain.unequipped_results, distributed.unequipped_results
        )

    @pytest.mark.slow
    def test_live_two_worker_fleet_no_fallback(self, paths):
        """The acceptance criterion: Campaign.run(backend="distributed")
        against an already-running external 2-worker fleet is bitwise
        identical to serial, with the fallback worker never engaged."""
        queue_path, store_path = paths
        serial = make_campaign().run(seed=SEED)
        fleet = [
            multiprocessing.Process(
                target=_fleet_member, args=(str(queue_path),)
            )
            for _ in range(2)
        ]
        for process in fleet:
            process.start()
        try:
            deadline = time.time() + 15
            with WorkQueue(queue_path) as queue:
                while len(queue.live_workers(ttl=5.0)) < 2:
                    assert time.time() < deadline, "fleet never came up"
                    time.sleep(0.05)
            distributed = make_campaign(
                backend="distributed",
                backend_options=fleet_options(
                    queue_path, store_path, chunk_size=1
                ),
            ).run(seed=SEED)
        finally:
            for process in fleet:
                process.join(timeout=30)
                if process.is_alive():
                    process.terminate()
        assert_bitwise_equal(serial, distributed)
        assert distributed.metadata["distributed_fallback"] is False
        with WorkQueue(queue_path) as queue:
            states = queue.chunk_states(
                distributed.metadata["campaign_id"]
            )
        assert len(states) == SCENARIOS
        assert all(state.status == "done" for state in states)


def _fleet_member(queue_path: str) -> None:
    """An external service worker: polls until idle for a while."""
    Worker(queue_path, lease_seconds=10, poll_interval=0.02).run(
        forever=True, idle_timeout=4.0
    )


# ----------------------------------------------------------------------
# Queue garbage collection
# ----------------------------------------------------------------------
class TestQueueGc:
    def _enqueue(self, queue, campaign_id, chunks=2):
        queue.submit_job(
            campaign_id, "store.sqlite", b"spec", RUNS, chunks,
            [f"chunk{i}".encode() for i in range(chunks)],
        )

    def _finish(self, queue, campaign_id, count):
        for _ in range(count):
            chunk = queue.claim(
                "gc-worker", lease_seconds=30, campaign_id=campaign_id
            )
            assert chunk is not None
            assert queue.release(
                campaign_id, chunk.chunk_index, "gc-worker", done=True
            )

    def test_gc_drops_done_chunks_and_orphaned_jobs(self, paths):
        queue_path, _ = paths
        with WorkQueue(queue_path) as queue:
            self._enqueue(queue, "finished", chunks=2)
            self._finish(queue, "finished", 2)
            self._enqueue(queue, "active", chunks=2)
            self._finish(queue, "active", 1)

            dry = queue.gc(dry_run=True)
            assert dry.dry_run
            assert dry.campaigns == ("finished",)
            assert dry.done_chunks == 2 and dry.failed_chunks == 0
            assert dry.jobs == 1
            # Dry run touched nothing.
            assert queue.chunk_counts("finished").done == 2
            assert len(queue.jobs()) == 2

            report = queue.gc()
            assert not report.dry_run
            assert report.chunks == 2 and report.jobs == 1
            assert queue.chunk_counts("finished").total == 0
            assert [job.campaign_id for job in queue.jobs()] == ["active"]
            # The active campaign kept everything — even its done
            # chunk (it is not yet eligible) and its pending one.
            tally = queue.chunk_counts("active")
            assert tally.done == 1 and tally.pending == 1

    def test_gc_collects_failed_chunks_of_drained_campaigns(self, paths):
        queue_path, _ = paths
        with WorkQueue(queue_path) as queue:
            self._enqueue(queue, "poisoned", chunks=1)
            for attempt in range(MAX_ATTEMPTS):
                chunk = queue.claim(f"w{attempt}", lease_seconds=30)
                assert chunk is not None
                queue.release("poisoned", 0, f"w{attempt}", done=False)
            assert queue.claim("w-final", lease_seconds=30) is None
            assert queue.chunk_counts("poisoned").failed == 1

            report = queue.gc()
            assert report.failed_chunks == 1
            assert report.jobs == 1
            assert queue.chunk_counts("poisoned").total == 0
            assert queue.jobs() == []

    def test_gc_max_age_collects_stale_active_campaigns(self, paths):
        queue_path, _ = paths
        with WorkQueue(queue_path) as queue:
            self._enqueue(queue, "stale", chunks=2)
            self._finish(queue, "stale", 1)
            # Not drained, not aged: nothing to collect.
            assert queue.gc().campaigns == ()
        # A handle whose clock is an hour ahead sees the job aged out:
        # its done chunk goes, its pending chunk and job row stay.
        with WorkQueue(
            queue_path, clock=lambda: time.time() + 3600
        ) as later:
            report = later.gc(max_age=600)
            assert report.campaigns == ("stale",)
            assert report.done_chunks == 1
            assert report.jobs == 0
            tally = later.chunk_counts("stale")
            assert tally.pending == 1 and tally.done == 0
            assert len(later.jobs()) == 1

    def test_gc_campaign_filter(self, paths):
        queue_path, _ = paths
        with WorkQueue(queue_path) as queue:
            for cid in ("one", "two"):
                self._enqueue(queue, cid, chunks=1)
                self._finish(queue, cid, 1)
            report = queue.gc(campaign_id="one")
            assert report.campaigns == ("one",)
            assert queue.chunk_counts("one").total == 0
            assert queue.chunk_counts("two").done == 1
            assert [job.campaign_id for job in queue.jobs()] == ["two"]

    def test_gc_drops_stale_worker_rows(self, paths):
        queue_path, _ = paths
        base = 3_000_000.0
        with WorkQueue(queue_path, clock=lambda: base) as queue:
            queue.claim("old-worker", lease_seconds=5)
        with WorkQueue(queue_path, clock=lambda: base + 1000) as later:
            report = later.gc(worker_ttl=300)
            assert report.stale_workers == 1
            assert later.live_workers(ttl=10_000) == []


# ----------------------------------------------------------------------
# CLI: queue gc / --backend distributed / clean filter errors
# ----------------------------------------------------------------------
class TestFleetCli:
    BASE = ["--sample", "4", "--runs", "3", "--seed", "7",
            "--equipage", "none"]

    def test_queue_gc_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        queue = str(tmp_path / "q.sqlite")
        store = str(tmp_path / "s.sqlite")
        assert main(["submit", *self.BASE,
                     "--queue", queue, "--store", store]) == 0
        assert main(["worker", "--queue", queue, "--poll", "0.02"]) == 0
        capsys.readouterr()

        assert main(["queue", "gc", queue, "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would drop 1 chunk(s) (1 done, 0 failed)" in out
        assert "1 job row(s)" in out
        # The dry run deleted nothing.
        assert main(["status", queue]) == 0
        assert "1 campaign(s), 0 incomplete" in capsys.readouterr().out

        assert main(["queue", "gc", queue]) == 0
        assert "dropped 1 chunk(s)" in capsys.readouterr().out
        assert main(["status", queue]) == 0
        assert "queue is empty" in capsys.readouterr().out
        # The results themselves are untouched by queue GC.
        assert main(["store", "list", store]) == 0
        assert "complete" in capsys.readouterr().out

    def test_queue_gc_missing_queue_is_clean_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="queue not found"):
            main(["queue", "gc", str(tmp_path / "nope.sqlite")])

    def test_campaign_backend_distributed(self, tmp_path, capsys):
        from repro.cli import main

        queue = str(tmp_path / "q.sqlite")
        store = str(tmp_path / "s.sqlite")
        assert main(["campaign", *self.BASE, "--backend", "distributed",
                     "--queue", queue, "--store", store]) == 0
        out = capsys.readouterr().out
        # Provenance-transparent: the summary names the inner backend.
        assert "backend=vectorized-batch" in out
        assert "simulated 4" in out
        # Re-running resumes from the fleet's store.
        assert main(["campaign", *self.BASE, "--backend", "distributed",
                     "--queue", queue, "--store", store]) == 0
        assert "loaded 4, simulated 0" in capsys.readouterr().out

    def test_campaign_backend_distributed_needs_paths(
        self, tmp_path, monkeypatch
    ):
        from repro.cli import main

        monkeypatch.delenv("REPRO_QUEUE", raising=False)
        monkeypatch.delenv("REPRO_STORE", raising=False)
        with pytest.raises(SystemExit, match="queue"):
            main(["campaign", *self.BASE, "--backend", "distributed"])

    def test_store_records_filter_errors_are_one_line(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        queue = str(tmp_path / "q.sqlite")
        store = str(tmp_path / "s.sqlite")
        assert main(["campaign", *self.BASE, "--backend", "distributed",
                     "--queue", queue, "--store", store]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="not allowed"):
            main(["store", "records", store,
                  "--where", "nmac_rate > 0; DROP TABLE records"])
        with pytest.raises(SystemExit, match="malformed filter"):
            main(["store", "records", store,
                  "--where", "no_such_column = 1"])
        with pytest.raises(SystemExit, match="not allowed"):
            main(["store", "records", store,
                  "--where", "nmac_rate > 0 -- sneaky"])


# ----------------------------------------------------------------------
# Review hardening: throttled heartbeats, gc-vs-waiters, wait_timeout
# ----------------------------------------------------------------------
class TestReviewHardening:
    def test_idle_heartbeats_are_throttled(self, paths):
        """Tight idle polling must not write the workers table every
        poll — the row refreshes only once per quarter TTL."""
        queue_path, _ = paths
        now = {"t": 5_000_000.0}
        with WorkQueue(queue_path, clock=lambda: now["t"]) as queue:
            queue.claim("w1", lease_seconds=5)
            (worker,) = queue.live_workers(ttl=1e9)
            first = worker.heartbeat
            now["t"] += 1.0  # inside the refresh window: no write
            queue.claim("w1", lease_seconds=5)
            (worker,) = queue.live_workers(ttl=1e9)
            assert worker.heartbeat == first
            now["t"] += 10.0  # past the window: refreshed
            queue.claim("w1", lease_seconds=5)
            (worker,) = queue.live_workers(ttl=1e9)
            assert worker.heartbeat == first + 11.0

    def test_gc_of_stuck_campaign_makes_waiters_raise(
        self, paths, monkeypatch
    ):
        """gc'ing a failed campaign's rows must turn a blocked wait()
        into a clear error, not an infinite poll."""
        import repro.distributed.worker as worker_module

        queue_path, store_path = paths

        def explode(backend, num_runs, work):
            raise RuntimeError("poison")

        monkeypatch.setattr(worker_module, "_execute_chunk", explode)
        run = submit(
            make_campaign(), SEED, queue=queue_path, store=store_path
        )
        Worker(queue_path, poll_interval=0.01).run()
        with WorkQueue(queue_path) as queue:
            assert queue.chunk_counts(run.campaign_id).failed == 1
            queue.gc()
            assert queue.chunk_counts(run.campaign_id).total == 0
        with pytest.raises(RuntimeError, match="garbage-collected"):
            run.wait(timeout=5, poll=0.01)

    def test_wait_timeout_raises_when_fleet_never_comes(self, paths):
        queue_path, store_path = paths
        campaign = make_campaign(
            backend="distributed",
            backend_options=fleet_options(
                queue_path, store_path,
                fallback=False, wait_timeout=0.3,
            ),
        )
        with pytest.raises(TimeoutError, match="incomplete"):
            campaign.run(seed=SEED)

    def test_resubmit_to_different_store_is_refused(self, paths, tmp_path):
        """A queue's job row pins its store; re-submitting the same
        campaign against a different store would hang forever (nothing
        enqueues, nothing ever lands in the new store) — refuse."""
        queue_path, store_path = paths
        run = submit(
            make_campaign(), SEED, queue=queue_path, store=store_path
        )
        Worker(queue_path, poll_interval=0.02).run()
        assert run.wait(timeout=10, poll=0.02).complete
        with pytest.raises(ValueError, match="bound to store"):
            submit(
                make_campaign(), SEED,
                queue=queue_path, store=tmp_path / "other.sqlite",
            )

    def test_waiter_on_wrong_store_raises_not_hangs(self, paths, tmp_path):
        """A handle watching a store the job never drained into must
        surface the mismatch, not poll forever."""
        from repro.distributed import DistributedRun

        queue_path, store_path = paths
        run = submit(
            make_campaign(), SEED, queue=queue_path, store=store_path
        )
        Worker(queue_path, poll_interval=0.02).run()
        stale_handle = DistributedRun(
            campaign_id=run.campaign_id,
            queue_path=run.queue_path,
            store_path=str(tmp_path / "moved.sqlite"),
            num_scenarios=run.num_scenarios,
            already_stored=0,
            chunks_enqueued=0,
        )
        with pytest.raises(RuntimeError, match="different result store"):
            stale_handle.wait(timeout=5, poll=0.01)

    def test_worker_ttl_below_heartbeat_cadence_rejected(self, paths):
        queue_path, store_path = paths
        with pytest.raises(ValueError, match="worker_ttl"):
            make_campaign(
                backend="distributed",
                backend_options=fleet_options(
                    queue_path, store_path, worker_ttl=3.0
                ),
            )

    def test_simulate_many_falls_back_for_non_bulk_inner(self, paths):
        """The distributed backend always advertises simulate_many;
        with a non-bulk inner backend it must degrade to per-scenario
        calls, not crash on the missing attribute."""
        from repro.experiments import make_backend

        queue_path, store_path = paths
        backend = make_backend(
            "distributed", equipage="none",
            queue=str(queue_path), store=str(store_path),
            inner="vectorized",
        )
        reference = make_backend("vectorized", equipage="none")
        scenarios = make_campaign().source.scenarios(
            seed=__import__("numpy").random.default_rng(0)
        )
        params = [s.params for s in scenarios[:2]]
        got = backend.simulate_many(params, 3, [1, 2])
        for result, p, seed in zip(got, params, (1, 2)):
            expect = reference.simulate(p, 3, seed=seed)
            for field in RUN_FIELDS:
                assert (
                    getattr(result, field) == getattr(expect, field)
                ).all()
