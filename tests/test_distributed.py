"""Tests for lease-based distributed campaign execution.

The contract under test is the acceptance criterion of the subsystem:
a campaign executed by independent worker processes through
``repro.distributed`` produces a :class:`~repro.experiments.ResultSet`
**bitwise identical** to the serial storeless run of the same campaign
and seed — including across worker crashes, lease expiry reclaims and
duplicate chunk deliveries — and a re-submitted completed campaign
performs zero new simulations.
"""

import multiprocessing
import pickle
import time
from pathlib import Path

import pytest

from repro.distributed import (
    DistributedExecutor,
    Worker,
    WorkQueue,
    submit,
)
from repro.distributed.queue import MAX_ATTEMPTS
from repro.encounters import StatisticalEncounterModel
from repro.experiments import Campaign, SampledSource
from repro.experiments.campaign import RunRecord, _execute_chunk
from repro.montecarlo import MonteCarloEstimator
from repro.store import ResultStore

SCENARIOS = 5
RUNS = 3
SEED = 11

RUN_FIELDS = (
    "min_separation",
    "min_horizontal",
    "nmac",
    "own_alerted",
    "intruder_alerted",
)


def make_campaign(scenarios: int = SCENARIOS) -> Campaign:
    """A tiny unequipped campaign (no logic table: fast to simulate)."""
    return Campaign(
        SampledSource(StatisticalEncounterModel(), scenarios),
        equipage="none",
        runs_per_scenario=RUNS,
    )


def assert_bitwise_equal(a, b):
    """Per-record bitwise equality of two result sets."""
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra.index == rb.index
        assert ra.name == rb.name
        assert (ra.params.as_array() == rb.params.as_array()).all()
        for field in RUN_FIELDS:
            assert (
                getattr(ra.runs, field) == getattr(rb.runs, field)
            ).all(), field


@pytest.fixture
def paths(tmp_path):
    return tmp_path / "queue.sqlite", tmp_path / "store.sqlite"


# ----------------------------------------------------------------------
# WorkQueue mechanics
# ----------------------------------------------------------------------
class TestWorkQueue:
    def _enqueue(self, queue, campaign_id="c1", chunks=2):
        return queue.submit_job(
            campaign_id,
            "store.sqlite",
            b"spec",
            RUNS,
            chunks,
            [f"chunk{i}".encode() for i in range(chunks)],
        )

    def test_submit_is_idempotent(self, paths):
        queue_path, _ = paths
        with WorkQueue(queue_path) as queue:
            assert self._enqueue(queue) is True
            assert self._enqueue(queue) is False
            assert queue.chunk_counts("c1").total == 2

    def test_claim_release_cycle(self, paths):
        queue_path, _ = paths
        with WorkQueue(queue_path) as queue:
            self._enqueue(queue)
            first = queue.claim("w1", lease_seconds=30)
            assert first is not None
            assert first.chunk_index == 0
            assert first.attempts == 1
            second = queue.claim("w2", lease_seconds=30)
            assert second.chunk_index == 1
            # Everything claimed: nothing left.
            assert queue.claim("w3", lease_seconds=30) is None
            assert queue.release("w1-chunk", 0, "w1", done=True) is False
            assert queue.release(first.campaign_id, 0, "w1", done=True)
            assert queue.chunk_counts("c1").done == 1
            # Failed execution returns the chunk to pending.
            assert queue.release(second.campaign_id, 1, "w2", done=False)
            assert queue.chunk_counts("c1").pending == 1

    def test_expired_lease_is_reclaimed(self, paths):
        queue_path, _ = paths
        with WorkQueue(queue_path) as queue:
            self._enqueue(queue, chunks=1)
            held = queue.claim("dead-worker", lease_seconds=0.01)
            assert held is not None
            time.sleep(0.05)
            reclaimed = queue.claim("live-worker", lease_seconds=30)
            assert reclaimed is not None
            assert reclaimed.chunk_index == held.chunk_index
            assert reclaimed.attempts == 2
            # The dead worker lost the lease: renew and release refuse.
            assert not queue.renew("c1", 0, "dead-worker", 30)
            assert not queue.release("c1", 0, "dead-worker", done=True)
            # The live worker's completion sticks.
            assert queue.release("c1", 0, "live-worker", done=True)
            assert queue.drained("c1")

    def test_renew_extends_live_lease(self, paths):
        queue_path, _ = paths
        with WorkQueue(queue_path) as queue:
            self._enqueue(queue, chunks=1)
            held = queue.claim("w1", lease_seconds=0.2)
            assert queue.renew("c1", 0, "w1", lease_seconds=60)
            # Renewed past the original deadline: not claimable.
            time.sleep(0.25)
            assert queue.claim("w2", lease_seconds=30) is None
            assert held.worker_id == "w1"

    def test_poison_chunk_fails_after_max_attempts(self, paths):
        queue_path, _ = paths
        with WorkQueue(queue_path) as queue:
            self._enqueue(queue, chunks=1)
            for attempt in range(MAX_ATTEMPTS):
                held = queue.claim(f"w{attempt}", lease_seconds=30)
                assert held is not None
                assert held.attempts == attempt + 1
                queue.release("c1", 0, f"w{attempt}", done=False)
            assert queue.claim("w-final", lease_seconds=30) is None
            tally = queue.chunk_counts("c1")
            assert tally.failed == 1
            assert not queue.drained("c1")

    def test_memory_queue_rejected_for_distribution(self, tmp_path):
        with pytest.raises(ValueError, match="file-backed"):
            submit(
                make_campaign(),
                SEED,
                queue=":memory:",
                store=tmp_path / "s.sqlite",
            )
        with pytest.raises(ValueError, match="file-backed"):
            submit(
                make_campaign(),
                SEED,
                queue=tmp_path / "q.sqlite",
                store=":memory:",
            )


# ----------------------------------------------------------------------
# Coordinator + worker: the bitwise contract
# ----------------------------------------------------------------------
class TestDistributedExecution:
    def test_single_worker_matches_serial_bitwise(self, paths):
        queue_path, store_path = paths
        serial = make_campaign().run(seed=SEED)
        run = submit(
            make_campaign(), SEED,
            queue=queue_path, store=store_path, chunk_size=2,
        )
        assert run.num_scenarios == SCENARIOS
        assert run.chunks_enqueued == 3
        stats = Worker(queue_path, lease_seconds=10, poll_interval=0.02).run()
        assert stats.chunks_done == 3
        assert stats.records_written == SCENARIOS
        assert stats.backends_built == 1
        final = run.wait(timeout=10, poll=0.02)
        assert final.complete
        assert_bitwise_equal(serial, run.collect())

    def test_resubmit_completed_campaign_simulates_nothing(self, paths):
        queue_path, store_path = paths
        run = submit(
            make_campaign(), SEED, queue=queue_path, store=store_path
        )
        Worker(queue_path, poll_interval=0.02).run()
        resubmit = submit(
            make_campaign(), SEED, queue=queue_path, store=store_path
        )
        assert resubmit.campaign_id == run.campaign_id
        assert resubmit.chunks_enqueued == 0
        assert resubmit.already_stored == SCENARIOS
        assert resubmit.simulated == 0
        # A worker pointed at the queue finds nothing to do.
        stats = Worker(queue_path, poll_interval=0.02).run()
        assert stats.chunks_done == 0 and stats.records_written == 0
        assert_bitwise_equal(make_campaign().run(seed=SEED),
                             resubmit.collect())

    def test_partial_store_submits_only_missing_tail(self, paths):
        queue_path, store_path = paths
        # Pre-store a prefix through the ordinary resume path by
        # truncating an iter_records stream.
        with ResultStore(store_path) as store:
            stream = make_campaign().iter_records(seed=SEED, store=store)
            for _ in range(2):
                next(stream)
            stream.close()
        run = submit(
            make_campaign(), SEED,
            queue=queue_path, store=store_path, chunk_size=1,
        )
        assert run.already_stored == 2
        assert run.simulated == SCENARIOS - 2
        assert run.chunks_enqueued == SCENARIOS - 2
        Worker(queue_path, poll_interval=0.02).run()
        assert_bitwise_equal(make_campaign().run(seed=SEED), run.collect())

    def test_collect_before_completion_raises(self, paths):
        queue_path, store_path = paths
        run = submit(
            make_campaign(), SEED, queue=queue_path, store=store_path
        )
        with pytest.raises(RuntimeError, match="wait"):
            run.collect()

    def test_unregistered_backend_rejected(self, paths):
        queue_path, store_path = paths

        class OpaqueBackend:
            name = "opaque"

            def simulate(self, params, num_runs, seed=None):
                raise NotImplementedError

        campaign = make_campaign()
        campaign.backend = OpaqueBackend()
        with pytest.raises(TypeError, match="registry-built"):
            submit(campaign, SEED, queue=queue_path, store=store_path)

    @pytest.mark.slow
    def test_two_worker_processes_match_serial_bitwise(self, paths):
        queue_path, store_path = paths
        serial = make_campaign().run(seed=SEED)
        run = submit(
            make_campaign(), SEED,
            queue=queue_path, store=store_path, chunk_size=1,
        )
        assert run.chunks_enqueued == SCENARIOS
        from repro.distributed import run_workers

        run_workers(queue_path, num_workers=2, lease_seconds=10,
                    poll_interval=0.02)
        final = run.wait(timeout=30, poll=0.05)
        assert final.complete
        collected = run.collect()
        assert_bitwise_equal(serial, collected)
        # Both workers really participated... or at minimum every chunk
        # completed exactly once.
        with WorkQueue(run.queue_path) as queue:
            states = queue.chunk_states(run.campaign_id)
        assert all(state.status == "done" for state in states)


# ----------------------------------------------------------------------
# Fault injection: dead workers, reclaims, duplicate delivery
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_dead_worker_chunk_reclaimed_no_duplicates(self, paths):
        """A worker dies mid-chunk after writing a partial record.

        The chunk's lease expires, a live worker reclaims and fully
        re-executes it (duplicate delivery of the partial record), and
        the final result set is bitwise identical to the serial run
        with no duplicated records.
        """
        queue_path, store_path = paths
        serial = make_campaign().run(seed=SEED)
        run = submit(
            make_campaign(), SEED,
            queue=queue_path, store=store_path, chunk_size=2,
        )
        # Simulate the doomed worker by hand: claim with a tiny lease,
        # execute the chunk, write ONE record, then "crash" (never
        # release, never heartbeat).
        with WorkQueue(queue_path) as queue:
            held = queue.claim("doomed", lease_seconds=0.05)
            assert held is not None
            job = queue.job(held.campaign_id)
            backend = pickle.loads(job.backend_spec).build()
            items = pickle.loads(held.payload)
            work = [(i, params, seed) for i, _, params, seed in items]
            outcomes = _execute_chunk(backend, job.runs_per_scenario, work)
            first_index, first_result = outcomes[0]
            with ResultStore(store_path) as store:
                assert store.add_record(
                    held.campaign_id,
                    RunRecord(
                        index=first_index,
                        name=items[0][1],
                        params=items[0][2],
                        runs=first_result,
                    ),
                )
        time.sleep(0.1)  # the doomed worker's lease expires

        stats = Worker(
            queue_path, worker_id="live", lease_seconds=10,
            poll_interval=0.02,
        ).run()
        final = run.wait(timeout=10, poll=0.02)
        assert final.complete

        # The reclaimed chunk was fully re-executed: its already-stored
        # record arrived again and deduped instead of duplicating.
        assert stats.records_deduped == 1
        assert stats.records_written == SCENARIOS - 1
        with WorkQueue(queue_path) as queue:
            states = queue.chunk_states(run.campaign_id)
        assert all(state.status == "done" for state in states)
        assert any(state.attempts == 2 for state in states)

        with ResultStore(store_path) as store:
            assert len(store.completed_indices(run.campaign_id)) == SCENARIOS
        assert_bitwise_equal(serial, run.collect())

    @pytest.mark.slow
    def test_killed_worker_process_chunk_reclaimed(self, paths):
        """SIGKILL a real worker process mid-run; the fleet recovers."""
        queue_path, store_path = paths
        serial = make_campaign(8).run(seed=SEED)
        run = submit(
            make_campaign(8), SEED,
            queue=queue_path, store=store_path, chunk_size=1,
        )

        def crashy(queue_path):
            # Claims one chunk under a short lease and dies holding it.
            with WorkQueue(queue_path) as queue:
                assert queue.claim("crashy", lease_seconds=0.2) is not None

        victim = multiprocessing.Process(
            target=crashy, args=(str(queue_path),)
        )
        victim.start()
        victim.join()

        stats = Worker(
            queue_path, lease_seconds=5, poll_interval=0.02
        ).run()
        final = run.wait(timeout=30, poll=0.05)
        assert final.complete
        assert stats.records_written == 8
        assert_bitwise_equal(serial, run.collect())


# ----------------------------------------------------------------------
# The store= seam: executor through Campaign / MonteCarloEstimator
# ----------------------------------------------------------------------
class TestDistributedExecutorSeam:
    def test_campaign_run_accepts_executor(self, paths):
        queue_path, store_path = paths
        serial = make_campaign().run(seed=SEED)
        executor = DistributedExecutor(
            queue_path, store_path, workers=0, poll_interval=0.02
        )
        distributed = make_campaign().run(seed=SEED, store=executor)
        assert_bitwise_equal(serial, distributed)
        meta = distributed.metadata
        assert meta["simulated"] == SCENARIOS
        assert meta["loaded"] == 0
        assert "campaign_id" in meta
        assert meta["distributed_workers"] == 0
        # A second run loads everything from the store.
        rerun = make_campaign().run(seed=SEED, store=executor)
        assert rerun.metadata["loaded"] == SCENARIOS
        assert rerun.metadata["simulated"] == 0
        assert_bitwise_equal(serial, rerun)

    def test_campaign_iter_records_accepts_executor(self, paths):
        queue_path, store_path = paths
        serial = list(make_campaign().iter_records(seed=SEED))
        executor = DistributedExecutor(
            queue_path, store_path, workers=0, poll_interval=0.02
        )
        streamed = list(
            make_campaign().iter_records(seed=SEED, store=executor)
        )
        assert [r.index for r in streamed] == [r.index for r in serial]
        for ra, rb in zip(serial, streamed):
            for field in RUN_FIELDS:
                assert (
                    getattr(ra.runs, field) == getattr(rb.runs, field)
                ).all()

    def test_montecarlo_accepts_executor_unchanged(self, paths, tiny_table):
        queue_path, store_path = paths
        model = StatisticalEncounterModel()
        plain = MonteCarloEstimator(
            tiny_table, model, runs_per_encounter=2
        ).estimate(3, seed=5)
        executor = DistributedExecutor(
            queue_path, store_path, workers=0, poll_interval=0.02
        )
        distributed = MonteCarloEstimator(
            tiny_table, model, runs_per_encounter=2, store=executor
        ).estimate(3, seed=5)
        assert distributed.summary() == plain.summary()
        assert_bitwise_equal(
            plain.equipped_results, distributed.equipped_results
        )
        assert_bitwise_equal(
            plain.unequipped_results, distributed.unequipped_results
        )
        # Both arms landed in the shared store under distinct ids.
        with ResultStore(store_path) as store:
            assert len(store.campaigns()) == 2

    def test_executor_fleet_is_scoped_to_its_campaign(self, paths):
        """A shared queue with unrelated in-flight work must not feed
        the executor's fleet other jobs' chunks, nor block its exit on
        their leases."""
        queue_path, store_path = paths
        # An unrelated job: one chunk claimed by an external worker
        # under a long (live) lease, one chunk pending.
        with WorkQueue(queue_path) as queue:
            queue.submit_job(
                "unrelated", str(store_path), b"not-a-real-spec",
                RUNS, 2, [b"chunk-a", b"chunk-b"],
            )
            assert queue.claim(
                "external", lease_seconds=3600, campaign_id="unrelated"
            ) is not None

        executor = DistributedExecutor(
            queue_path, store_path, workers=0, poll_interval=0.02
        )
        serial = make_campaign().run(seed=SEED)
        start = time.time()
        distributed = make_campaign().run(seed=SEED, store=executor)
        assert time.time() - start < 30  # not waiting out the 1h lease
        assert_bitwise_equal(serial, distributed)
        # The unrelated job is untouched: its pending chunk was never
        # claimed (a scoped worker would have choked on the fake spec).
        with WorkQueue(queue_path) as queue:
            tally = queue.chunk_counts("unrelated")
            assert tally.pending == 1 and tally.claimed == 1
            assert tally.failed == 0

    def test_submit_resolves_relative_paths(self, tmp_path, monkeypatch):
        """Workers launch from any cwd: job rows must carry absolute
        paths even when the submitter used relative ones."""
        monkeypatch.chdir(tmp_path)
        run = submit(
            make_campaign(), SEED, queue="q.sqlite", store="s.sqlite"
        )
        assert Path(run.queue_path).is_absolute()
        assert Path(run.store_path).is_absolute()
        with WorkQueue(run.queue_path) as queue:
            job = queue.job(run.campaign_id)
        assert Path(job.store_path).is_absolute()
        # A worker run from elsewhere still drains into the right store.
        monkeypatch.chdir(tmp_path.parent)
        Worker(run.queue_path, poll_interval=0.02).run()
        assert_bitwise_equal(make_campaign().run(seed=SEED), run.collect())

    def test_failed_chunk_records_last_error(self, paths, capsys):
        queue_path, store_path = paths
        with WorkQueue(queue_path) as queue:
            queue.submit_job(
                "poison", str(store_path), b"not-a-pickled-spec",
                RUNS, 1, [b"junk-payload"],
            )
        stats = Worker(
            queue_path, lease_seconds=5, poll_interval=0.01
        ).run(max_chunks=None, idle_timeout=0.1)
        assert stats.chunks_failed >= 1
        assert "failed" in capsys.readouterr().err
        with WorkQueue(queue_path) as queue:
            states = queue.chunk_states("poison")
        assert states[0].last_error  # diagnosis survives on the row

    @pytest.mark.slow
    def test_executor_with_process_fleet(self, paths):
        queue_path, store_path = paths
        serial = make_campaign().run(seed=SEED)
        executor = DistributedExecutor(
            queue_path, store_path, workers=2,
            lease_seconds=10, poll_interval=0.02, chunk_size=1,
        )
        distributed = make_campaign().run(seed=SEED, store=executor)
        assert_bitwise_equal(serial, distributed)
        assert distributed.metadata["distributed_workers"] == 2


# ----------------------------------------------------------------------
# CLI: submit / worker / status / store records / --queue column
# ----------------------------------------------------------------------
class TestDistributedCli:
    BASE = ["--sample", "4", "--runs", "3", "--seed", "7",
            "--equipage", "none"]

    def _submit(self, main, tmp_path, capsys):
        queue = str(tmp_path / "q.sqlite")
        store = str(tmp_path / "s.sqlite")
        assert main(["submit", *self.BASE,
                     "--queue", queue, "--store", store]) == 0
        return queue, store, capsys.readouterr().out

    def test_submit_worker_status_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        queue, store, out = self._submit(main, tmp_path, capsys)
        assert "enqueued 1 chunk(s)" in out

        assert main(["status", queue]) == 0
        assert "1 incomplete" in capsys.readouterr().out

        assert main(["worker", "--queue", queue, "--poll", "0.02"]) == 0
        worker_out = capsys.readouterr().out
        assert "1 chunks done" in worker_out
        assert "4 records written" in worker_out

        assert main(["status", queue]) == 0
        assert "0 incomplete" in capsys.readouterr().out

        # Re-submit: completed campaign enqueues nothing.
        assert main(["submit", *self.BASE,
                     "--queue", queue, "--store", store]) == 0
        resubmit_out = capsys.readouterr().out
        assert "enqueued 0 chunk(s)" in resubmit_out
        assert "already complete" in resubmit_out

    def test_store_list_show_queue_column(self, tmp_path, capsys):
        from repro.cli import main

        queue, store, _ = self._submit(main, tmp_path, capsys)
        assert main(["worker", "--queue", queue, "--poll", "0.02"]) == 0
        capsys.readouterr()

        assert main(["store", "list", store, "--queue", queue]) == 0
        listing = capsys.readouterr().out
        assert "queue" in listing.splitlines()[0]
        assert "0p/0c/1d" in listing

        campaign_id = [
            line.split()[0] for line in listing.splitlines()[1:]
            if line.strip()
        ][0]
        assert main(["store", "show", store, campaign_id,
                     "--queue", queue]) == 0
        shown = capsys.readouterr().out
        assert "queue:     0p/0c/1d" in shown

    def test_store_records_json_and_csv(self, tmp_path, capsys):
        import json as json_module

        from repro.cli import main

        queue, store, _ = self._submit(main, tmp_path, capsys)
        assert main(["worker", "--queue", queue, "--poll", "0.02"]) == 0
        capsys.readouterr()

        assert main(["store", "records", store,
                     "--where", "nmac_rate >= ?", "--params", "0"]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert len(payload) == 4
        assert {"campaign_id", "name", "nmac_rate", "genome"} <= set(
            payload[0]
        )

        out_csv = tmp_path / "records.csv"
        assert main(["store", "records", store, "--format", "csv",
                     "--out", str(out_csv)]) == 0
        lines = out_csv.read_text().strip().splitlines()
        assert lines[0].startswith("campaign_id,index,name,num_runs")
        assert len(lines) == 5
