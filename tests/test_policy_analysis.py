"""Tests for logic-table inspection tools."""

import numpy as np
import pytest

from repro.acasx.config import AcasConfig
from repro.acasx.policy_analysis import (
    action_map,
    alert_boundary,
    compare_tables,
)
from repro.acasx.solver import build_logic_table


class TestAlertBoundary:
    def test_coaltitude_alerts_separated_does_not(self, test_table):
        boundary = dict(alert_boundary(test_table))
        assert boundary[0.0] is not None  # co-altitude must alert
        assert boundary[0.0] >= 5.0       # and with meaningful lead time
        h_max = test_table.config.h_max
        assert boundary[h_max] is None or boundary[h_max] < boundary[0.0]

    def test_boundary_is_symmetricish(self, test_table):
        boundary = dict(alert_boundary(test_table))
        h = test_table.config.h_points
        for altitude in h[h > 0]:
            up = boundary[float(altitude)]
            down = boundary[float(-altitude)]
            # Mirror symmetry of the model ⇒ same alerting lead time.
            assert (up is None) == (down is None)
            if up is not None:
                assert up == pytest.approx(down)

    def test_custom_h_values(self, test_table):
        boundary = alert_boundary(
            test_table, h_values=np.array([0.0, 100.0])
        )
        assert len(boundary) == 2


class TestActionMap:
    def test_shape_and_glyphs(self, tiny_table):
        text = action_map(tiny_table)
        lines = text.splitlines()
        # Header + one row per altitude grid point.
        assert len(lines) == tiny_table.config.num_h + 1
        body = "".join(lines[1:])
        assert set(body) <= set(".cdCD=+-mh0123456789 ")

    def test_alerting_region_present(self, test_table):
        text = action_map(test_table)
        assert any(glyph in text for glyph in "cdCD")

    def test_coc_dominates_far_altitudes(self, test_table):
        lines = action_map(test_table).splitlines()
        top_row = lines[1]  # +h_max
        glyphs = top_row.split("m ", 1)[1]
        assert glyphs.count(".") > len(glyphs) * 0.8


class TestCompareTables:
    def test_table_agrees_with_itself(self, tiny_table):
        comparison = compare_tables(tiny_table, tiny_table)
        assert comparison.disagreements == 0
        assert comparison.agreement_rate == 1.0
        assert comparison.max_q_difference == 0.0

    def test_different_resolutions_mostly_agree(self, tiny_table):
        finer = build_logic_table(
            AcasConfig(
                h_max=tiny_table.config.h_max,
                num_h=2 * tiny_table.config.num_h - 1,
                rate_max=tiny_table.config.rate_max,
                num_rate=tiny_table.config.num_rate,
                horizon=tiny_table.config.horizon,
            )
        )
        comparison = compare_tables(tiny_table, finer)
        assert comparison.agreement_rate > 0.7
        assert comparison.states_compared > 0

    def test_different_costs_disagree(self, tiny_table):
        config = tiny_table.config
        aggressive = build_logic_table(
            AcasConfig(
                h_max=config.h_max,
                num_h=config.num_h,
                rate_max=config.rate_max,
                num_rate=config.num_rate,
                horizon=config.horizon,
                alert_cost=0.1,
                new_alert_cost=0.1,
                coc_reward=0.0,
            )
        )
        comparison = compare_tables(tiny_table, aggressive)
        assert comparison.disagreements > 0
        assert comparison.max_q_difference > 1.0
