"""Tests for repro.dynamics.vectors (paper Eq. (1))."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dynamics.vectors import (
    Velocity,
    cartesian_to_polar,
    polar_to_cartesian,
)


class TestPolarToCartesian:
    def test_eastbound(self):
        np.testing.assert_allclose(
            polar_to_cartesian(10.0, 0.0, 2.0), [10.0, 0.0, 2.0]
        )

    def test_northbound(self):
        np.testing.assert_allclose(
            polar_to_cartesian(10.0, math.pi / 2, -1.0),
            [0.0, 10.0, -1.0],
            atol=1e-12,
        )

    def test_reciprocal_heading(self):
        forward = polar_to_cartesian(5.0, 0.3, 0.0)
        backward = polar_to_cartesian(5.0, 0.3 + math.pi, 0.0)
        np.testing.assert_allclose(forward[:2], -backward[:2], atol=1e-12)

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            polar_to_cartesian(-1.0, 0.0, 0.0)

    @given(
        st.floats(0.0, 100.0),
        st.floats(-math.pi, math.pi),
        st.floats(-10.0, 10.0),
    )
    def test_ground_speed_preserved(self, gs, bearing, vs):
        vx, vy, vz = polar_to_cartesian(gs, bearing, vs)
        assert math.hypot(vx, vy) == pytest.approx(gs, abs=1e-9)
        assert vz == vs


class TestCartesianToPolar:
    @given(
        st.floats(0.1, 100.0),
        st.floats(-math.pi + 1e-6, math.pi),
        st.floats(-10.0, 10.0),
    )
    def test_round_trip(self, gs, bearing, vs):
        cart = polar_to_cartesian(gs, bearing, vs)
        gs2, bearing2, vs2 = cartesian_to_polar(cart)
        assert gs2 == pytest.approx(gs, rel=1e-9)
        assert bearing2 == pytest.approx(bearing, abs=1e-9)
        assert vs2 == pytest.approx(vs)

    def test_hovering_bearing_is_zero(self):
        assert cartesian_to_polar(np.array([0.0, 0.0, 3.0]))[1] == 0.0


class TestVelocity:
    def test_from_polar(self):
        v = Velocity.from_polar(10.0, 0.0, 1.0)
        assert v.vx == pytest.approx(10.0)
        assert v.ground_speed == pytest.approx(10.0)
        assert v.vertical_speed == 1.0

    def test_array_view(self):
        v = Velocity(1.0, 2.0, 3.0)
        np.testing.assert_allclose(v.array, [1.0, 2.0, 3.0])

    def test_addition_and_scaling(self):
        v = Velocity(1.0, 2.0, 3.0) + Velocity(1.0, 1.0, 1.0)
        assert (v.vx, v.vy, v.vz) == (2.0, 3.0, 4.0)
        s = v.scaled(0.5)
        assert (s.vx, s.vy, s.vz) == (1.0, 1.5, 2.0)

    def test_bearing(self):
        assert Velocity(0.0, 5.0, 0.0).bearing == pytest.approx(math.pi / 2)
