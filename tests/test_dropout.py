"""Failure injection: ADS-B message loss end to end."""

import numpy as np
import pytest

from repro.acasx.logic_table import LogicTable
from repro.avoidance.acas import AcasXuAvoidance
from repro.avoidance.tracked import TrackedAvoidance
from repro.dynamics.aircraft import AircraftState
from repro.encounters import head_on_encounter
from repro.sim import EncounterSimConfig, run_encounter
from repro.sim.sensors import AdsBSensor


def state(x=0.0, y=0.0, z=1000.0, vx=0.0, vy=0.0, vz=0.0):
    return AircraftState(np.array([x, y, z]), np.array([vx, vy, vz]))


class TestSensorDropout:
    def test_dropout_rate_statistics(self):
        sensor = AdsBSensor(dropout_rate=0.3)
        rng = np.random.default_rng(0)
        received = sum(
            sensor.receive(state(), rng) is not None for _ in range(2000)
        )
        assert received / 2000 == pytest.approx(0.7, abs=0.05)

    def test_zero_dropout_always_receives(self):
        sensor = AdsBSensor()
        rng = np.random.default_rng(0)
        assert all(
            sensor.receive(state(), rng) is not None for _ in range(100)
        )

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            AdsBSensor(dropout_rate=1.0)
        with pytest.raises(ValueError):
            AdsBSensor(dropout_rate=-0.1)


class TestDropoutInEncounters:
    def test_untracked_acas_survives_moderate_dropout(self, test_table):
        # The runner holds the previous maneuver through lost reports,
        # so a moderate loss rate must not break head-on protection.
        config = EncounterSimConfig(sensor=AdsBSensor(dropout_rate=0.3))
        nmacs = 0
        for seed in range(10):
            own = AcasXuAvoidance(test_table, "own")
            intruder = AcasXuAvoidance(test_table, "intr")
            result = run_encounter(
                head_on_encounter(), own, intruder, config, seed=seed
            )
            nmacs += int(result.nmac)
        assert nmacs <= 1

    def test_tracked_acas_handles_heavy_dropout(self, test_table):
        config = EncounterSimConfig(sensor=AdsBSensor(dropout_rate=0.6))
        separations = []
        for seed in range(10):
            own = TrackedAvoidance(AcasXuAvoidance(test_table, "own"))
            intruder = TrackedAvoidance(AcasXuAvoidance(test_table, "intr"))
            result = run_encounter(
                head_on_encounter(), own, intruder, config, seed=seed
            )
            separations.append(result.min_separation)
        # The tracker coasts through gaps: protection persists.
        assert np.mean(separations) > 60.0

    def test_tracked_alert_flag_propagates(self, test_table):
        config = EncounterSimConfig(sensor=AdsBSensor(dropout_rate=0.2))
        own = TrackedAvoidance(AcasXuAvoidance(test_table, "own"))
        result = run_encounter(
            head_on_encounter(), own, None, config, seed=0
        )
        assert result.own_alerted == own.ever_alerted
