"""Tests for the simulation building blocks: sensors, disturbance,
monitors, traces and the engine."""

import math

import numpy as np
import pytest

from repro.avoidance.base import Maneuver, NoAvoidance
from repro.dynamics.aircraft import AircraftState, VerticalRateCommand
from repro.sim.agents import UavAgent
from repro.sim.disturbance import DisturbanceModel, noise_std
from repro.sim.engine import SimulationEngine
from repro.sim.monitors import AccidentDetector, ProximityMeasurer
from repro.sim.sensors import AdsBSensor
from repro.sim.trace import TrajectoryTrace, render_vertical_profile
from repro.util.rng import RngStream
from repro.util.units import NMAC_HORIZONTAL_M, NMAC_VERTICAL_M


def state(x=0.0, y=0.0, z=1000.0, vx=0.0, vy=0.0, vz=0.0):
    return AircraftState(np.array([x, y, z]), np.array([vx, vy, vz]))


class TestAdsBSensor:
    def test_noiseless_is_identity(self):
        sensor = AdsBSensor.noiseless()
        true = state(1, 2, 3, 4, 5, 6)
        sensed = sensor.sense(true, np.random.default_rng(0))
        np.testing.assert_array_equal(sensed.position, true.position)
        np.testing.assert_array_equal(sensed.velocity, true.velocity)

    def test_noise_statistics(self):
        sensor = AdsBSensor(
            horizontal_position_std=5.0,
            vertical_position_std=2.0,
            horizontal_velocity_std=0.5,
            vertical_velocity_std=0.1,
        )
        rng = np.random.default_rng(1)
        true = state()
        errors = np.array(
            [sensor.sense(true, rng).position - true.position
             for _ in range(3000)]
        )
        assert np.std(errors[:, 0]) == pytest.approx(5.0, rel=0.1)
        assert np.std(errors[:, 2]) == pytest.approx(2.0, rel=0.1)
        assert np.mean(errors) == pytest.approx(0.0, abs=0.3)

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            AdsBSensor(horizontal_position_std=-1.0)


class TestDisturbanceModel:
    def test_noise_std_of_discrete_distribution(self):
        # The paper's toy intruder noise in the 0.5 m/s scaling.
        samples = ((0.0, 0.5), (-0.5, 0.15), (0.5, 0.15), (-1.0, 0.1), (1.0, 0.1))
        expected = math.sqrt(0.15 * 0.25 * 2 + 0.1 * 1.0 * 2)
        assert noise_std(samples) == pytest.approx(expected)

    def test_brownian_scaling(self):
        model = DisturbanceModel(vertical_rate_std=0.5)
        rng = np.random.default_rng(0)
        # Rate change over dt accumulates std * sqrt(dt).
        for dt in (0.2, 1.0):
            accels = model.sample_vertical_accel(dt, rng, size=20000)
            rate_changes = accels * dt
            assert np.std(rate_changes) == pytest.approx(
                0.5 * math.sqrt(dt), rel=0.05
            )

    def test_zero_noise(self):
        model = DisturbanceModel(vertical_rate_std=0.0)
        assert model.sample_vertical_accel(1.0, np.random.default_rng(0)) == 0.0
        assert model.sample_horizontal_accel(np.random.default_rng(0)) is None

    def test_matching_offline_model(self):
        from repro.acasx.config import FIVE_POINT_NOISE

        model = DisturbanceModel.matching_offline_model(FIVE_POINT_NOISE)
        assert model.vertical_rate_std == pytest.approx(
            noise_std(FIVE_POINT_NOISE)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DisturbanceModel(vertical_rate_std=-0.1)
        with pytest.raises(ValueError):
            DisturbanceModel().sample_vertical_accel(0.0, np.random.default_rng(0))


class TestProximityMeasurer:
    def test_tracks_minimum(self):
        measurer = ProximityMeasurer()
        measurer.observe(0.0, state(), state(x=100.0))
        measurer.observe(1.0, state(), state(x=50.0, z=1010.0))
        measurer.observe(2.0, state(), state(x=80.0))
        assert measurer.min_horizontal == pytest.approx(50.0)
        assert measurer.min_distance_3d == pytest.approx(
            math.hypot(50.0, 10.0)
        )
        assert measurer.time_of_min_distance == 1.0

    def test_vertical_at_min_horizontal(self):
        measurer = ProximityMeasurer()
        measurer.observe(0.0, state(), state(x=100.0, z=1050.0))
        measurer.observe(1.0, state(), state(x=30.0, z=1020.0))
        assert measurer.min_vertical_at_min_horizontal == pytest.approx(20.0)

    def test_reset(self):
        measurer = ProximityMeasurer()
        measurer.observe(0.0, state(), state(x=5.0))
        measurer.reset()
        assert measurer.min_distance_3d == np.inf


class TestAccidentDetector:
    def test_nmac_requires_both_thresholds(self):
        detector = AccidentDetector()
        # Close horizontally but vertically separated: no accident.
        detector.observe(0.0, state(), state(x=10.0, z=1000.0 + 2 * NMAC_VERTICAL_M))
        assert not detector.accident
        # Close vertically but far horizontally: no accident.
        detector.observe(1.0, state(), state(x=2 * NMAC_HORIZONTAL_M))
        assert not detector.accident
        # Both inside: accident.
        detector.observe(2.0, state(), state(x=10.0, z=1005.0))
        assert detector.accident
        assert detector.time_of_accident == 2.0

    def test_first_accident_time_kept(self):
        detector = AccidentDetector()
        detector.observe(5.0, state(), state(x=1.0))
        detector.observe(9.0, state(), state(x=1.0))
        assert detector.time_of_accident == 5.0

    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            AccidentDetector(horizontal_threshold=0.0)

    def test_reset(self):
        detector = AccidentDetector()
        detector.observe(0.0, state(), state(x=1.0))
        detector.reset()
        assert not detector.accident
        assert detector.time_of_accident is None


class TestTrajectoryTrace:
    def make_trace(self):
        trace = TrajectoryTrace()
        for t in range(5):
            trace.record(
                float(t),
                state(x=10.0 * t, z=1000.0 + t),
                state(x=100.0 - 10.0 * t, z=1010.0 - t),
                own_advisory="COC" if t < 2 else "CLIMB",
                intruder_advisory="COC",
            )
        return trace

    def test_series(self):
        trace = self.make_trace()
        assert len(trace) == 5
        np.testing.assert_allclose(trace.times, [0, 1, 2, 3, 4])
        assert trace.own_altitudes[-1] == pytest.approx(1004.0)
        assert trace.min_separation == trace.separations.min()

    def test_advisories_issued(self):
        trace = self.make_trace()
        assert trace.advisories_issued("own") == ["COC", "CLIMB"]
        assert trace.advisories_issued("intruder") == ["COC"]

    def test_csv_export(self):
        csv = self.make_trace().to_csv()
        lines = csv.strip().split("\n")
        assert len(lines) == 6  # header + 5 rows
        assert lines[0].startswith("time,own_x")
        assert "CLIMB" in csv

    def test_render_profile(self):
        art = render_vertical_profile(self.make_trace(), height=8)
        assert "min sep" in art
        assert "O" in art or "X" in art or "o" in art

    def test_render_empty(self):
        assert "empty" in render_vertical_profile(TrajectoryTrace())


class TestSimulationEngine:
    def make_agent(self, name="a", **kwargs):
        return UavAgent(
            name=name,
            state=state(**kwargs),
            avoidance=NoAvoidance(),
            disturbance=DisturbanceModel(vertical_rate_std=0.0),
            rng=RngStream(0),
        )

    def test_straight_line_integration(self):
        agent = self.make_agent(vx=10.0)
        engine = SimulationEngine([agent], decision_dt=1.0, physics_substeps=4)
        end = engine.run(5.0, decide=lambda t, agents: None)
        assert end == pytest.approx(5.0)
        assert agent.state.position[0] == pytest.approx(50.0)

    def test_observer_called_every_substep(self):
        agent = self.make_agent()
        calls = []
        engine = SimulationEngine([agent], decision_dt=1.0, physics_substeps=3)
        engine.run(2.0, decide=lambda t, a: None,
                   observers=[lambda t, a: calls.append(t)])
        assert len(calls) == 6
        assert calls[-1] == pytest.approx(2.0)

    def test_decide_called_per_decision_step(self):
        agent = self.make_agent()
        decisions = []
        engine = SimulationEngine([agent], decision_dt=0.5)
        engine.run(2.0, decide=lambda t, a: decisions.append(t))
        assert len(decisions) == 4

    def test_stop_condition(self):
        agent = self.make_agent(vx=1.0)
        engine = SimulationEngine([agent])
        end = engine.run(
            100.0,
            decide=lambda t, a: None,
            stop_condition=lambda t, a: t >= 3.0,
        )
        assert end == pytest.approx(3.0)

    def test_maneuver_applied(self):
        agent = self.make_agent()
        agent.current_maneuver = Maneuver(
            vertical=VerticalRateCommand(target_rate=2.0, acceleration=100.0)
        )
        agent.integrate(1.0)
        assert agent.state.vertical_rate == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationEngine([], decision_dt=0.0)
        with pytest.raises(ValueError):
            SimulationEngine([], physics_substeps=0)
        with pytest.raises(ValueError):
            SimulationEngine([self.make_agent()]).run(
                0.0, decide=lambda t, a: None
            )
