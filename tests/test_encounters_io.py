"""Tests for encounter JSON serialization."""

import json

import pytest

from repro.encounters import head_on_encounter, tail_approach_encounter
from repro.encounters.generator import ParameterRanges, ScenarioGenerator
from repro.encounters.io import (
    encounter_from_dict,
    encounter_to_dict,
    load_encounters,
    load_ranges,
    ranges_from_dict,
    ranges_to_dict,
    save_encounters,
)


class TestEncounterDicts:
    def test_round_trip(self):
        params = head_on_encounter()
        assert encounter_from_dict(encounter_to_dict(params)) == params

    def test_unknown_field_rejected(self):
        payload = encounter_to_dict(head_on_encounter())
        payload["warp_factor"] = 9.0
        with pytest.raises(ValueError, match="unknown"):
            encounter_from_dict(payload)

    def test_missing_field_rejected(self):
        payload = encounter_to_dict(head_on_encounter())
        del payload["time_to_cpa"]
        with pytest.raises(ValueError, match="missing"):
            encounter_from_dict(payload)


class TestRangesDicts:
    def test_round_trip(self):
        ranges = ParameterRanges(own_ground_speed=(10.0, 20.0))
        recovered = ranges_from_dict(ranges_to_dict(ranges))
        assert recovered == ranges

    def test_missing_range_rejected(self):
        payload = ranges_to_dict(ParameterRanges())
        del payload["cpa_angle"]
        with pytest.raises(ValueError, match="missing"):
            ranges_from_dict(payload)


class TestFiles:
    def test_save_load_round_trip(self, tmp_path):
        encounters = [head_on_encounter(), tail_approach_encounter()]
        path = save_encounters(
            encounters,
            tmp_path / "campaign" / "encounters.json",
            ranges=ParameterRanges(),
            metadata={"study": "unit-test"},
        )
        loaded = load_encounters(path)
        assert loaded == encounters
        ranges = load_ranges(path)
        assert ranges == ParameterRanges()

    def test_metadata_preserved_in_file(self, tmp_path):
        path = save_encounters(
            [head_on_encounter()], tmp_path / "e.json",
            metadata={"seed": 42},
        )
        payload = json.loads(path.read_text())
        assert payload["metadata"]["seed"] == 42
        assert payload["schema_version"] == 1

    def test_version_mismatch_rejected(self, tmp_path):
        path = save_encounters([head_on_encounter()], tmp_path / "e.json")
        payload = json.loads(path.read_text())
        payload["schema_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema version"):
            load_encounters(path)

    def test_ranges_absent_rejected(self, tmp_path):
        path = save_encounters([head_on_encounter()], tmp_path / "e.json")
        with pytest.raises(ValueError, match="no ranges"):
            load_ranges(path)

    def test_generated_encounters_survive_round_trip(self, tmp_path):
        encounters = ScenarioGenerator().random_encounters(20, seed=0)
        path = save_encounters(encounters, tmp_path / "gen.json")
        assert load_encounters(path) == encounters
