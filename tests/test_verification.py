"""Tests for the logic-table verification checks."""

import numpy as np
import pytest

from repro.acasx.config import AcasConfig
from repro.acasx.logic_table import LogicTable
from repro.acasx.verification import (
    check_symmetry,
    check_terminal_consistency,
    check_value_monotonicity,
    cross_check_with_dense_solver,
    verify_table,
)


class TestChecksOnSolvedTable:
    def test_all_checks_pass(self, tiny_table):
        report = verify_table(tiny_table, include_dense_cross_check=False)
        assert report.all_passed, report.summary()

    def test_dense_cross_check_passes(self):
        finding = cross_check_with_dense_solver(
            AcasConfig(num_h=7, num_rate=3, horizon=4)
        )
        assert finding.passed, finding.detail

    def test_summary_format(self, tiny_table):
        report = verify_table(tiny_table, include_dense_cross_check=False)
        text = report.summary()
        assert "[PASS]" in text
        assert "symmetry" in text


class TestChecksCatchCorruption:
    """Each check must fail on a deliberately corrupted table —
    verification that cannot fail verifies nothing."""

    def corrupt(self, table, mutate):
        q = table.q.copy()
        mutate(q)
        return LogicTable(table.config, q, metadata=dict(table.metadata))

    def test_symmetry_catches_asymmetric_q(self, tiny_table):
        def mutate(q):
            # Break the mirror at a stage the check samples (step =
            # horizon // 5, so stage 3 is always sampled for horizon 15).
            q[3, 1, 1, 0] += 50.0

        corrupted = self.corrupt(tiny_table, mutate)
        assert not check_symmetry(corrupted).passed

    def test_terminal_check_catches_bad_stage0(self, tiny_table):
        def mutate(q):
            q[0, 0, 0, :] += 1.0

        corrupted = self.corrupt(tiny_table, mutate)
        assert not check_terminal_consistency(corrupted).passed

    def test_monotonicity_catches_value_dip(self, tiny_table):
        config = tiny_table.config
        mid_h = config.num_h // 2
        mid_rate = config.num_rate // 2
        state = (mid_h * config.num_rate + mid_rate) * config.num_rate + mid_rate

        def mutate(q):
            # Make a later stage drastically worse than an earlier one.
            q[config.horizon, :, :, state] = -1e6

        corrupted = self.corrupt(tiny_table, mutate)
        assert not check_value_monotonicity(corrupted).passed

    def test_report_flags_failure(self, tiny_table):
        def mutate(q):
            q[0, 0, 0, :] += 1.0

        corrupted = self.corrupt(tiny_table, mutate)
        report = verify_table(corrupted, include_dense_cross_check=False)
        assert not report.all_passed
        assert "[FAIL]" in report.summary()
