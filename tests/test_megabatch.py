"""Tests for the megabatch execution path.

Covers the ``"vectorized-batch"`` backend (cross-scenario lane
flattening in :meth:`repro.sim.batch.BatchEncounterSimulator.run_many`),
its equivalence guarantees against the ``"vectorized"`` and ``"agent"``
backends, chunked/streamed campaign execution, and the picklable
:class:`BackendSpec` that worker processes rebuild their backend from.
"""

import numpy as np
import pytest

from repro.encounters import (
    StatisticalEncounterModel,
    head_on_encounter,
    tail_approach_encounter,
)
from repro.experiments import (
    BackendSpec,
    Campaign,
    SampledSource,
    available_backends,
    make_backend,
)
from repro.sim.batch import BatchEncounterSimulator
from repro.sim.encounter import EncounterSimConfig

RESULT_FIELDS = (
    "min_separation",
    "min_horizontal",
    "nmac",
    "own_alerted",
    "intruder_alerted",
)


def assert_results_equal(a, b):
    """Assert two BatchResults are bitwise identical."""
    for field in RESULT_FIELDS:
        np.testing.assert_array_equal(getattr(a, field), getattr(b, field))


def assert_record_runs_equal(result_a, result_b):
    """Assert two campaign results carry bitwise-identical run arrays."""
    assert len(result_a) == len(result_b)
    for rec_a, rec_b in zip(result_a, result_b):
        assert rec_a.index == rec_b.index and rec_a.name == rec_b.name
        assert_results_equal(rec_a.runs, rec_b.runs)


@pytest.fixture(scope="module")
def mixed_durations():
    """Scenarios with different durations, so the active-lane mask is
    exercised (short encounters stop stepping while long ones go on)."""
    model = StatisticalEncounterModel()
    sampled = model.sample(4, seed=np.random.default_rng(11))
    return sampled + [
        head_on_encounter(time_to_cpa=8.0),
        tail_approach_encounter(time_to_cpa=55.0),
    ]


class TestRunMany:
    def test_registered_everywhere(self):
        assert "vectorized-batch" in available_backends()

    @pytest.mark.parametrize("equipage", ["both", "own-only", "none"])
    def test_bitwise_identical_to_per_scenario_run(
        self, test_table, mixed_durations, equipage
    ):
        # The megabatch flattens all scenarios into one lane array, yet
        # each scenario's slice must equal its standalone simulation
        # bit for bit — per-scenario noise streams plus lane-wise array
        # ops guarantee it.
        table = None if equipage == "none" else test_table
        sim = BatchEncounterSimulator(
            table, EncounterSimConfig(), equipage=equipage
        )
        seeds = list(np.random.SeedSequence(3).spawn(len(mixed_durations)))
        batched = sim.run_many(mixed_durations, 5, seeds)
        for params, seed, result in zip(mixed_durations, seeds, batched):
            single = sim.run(params, 5, seed=np.random.default_rng(seed))
            assert_results_equal(single, result)

    def test_validation(self, test_table):
        sim = BatchEncounterSimulator(test_table, EncounterSimConfig())
        with pytest.raises(ValueError, match="at least one"):
            sim.run_many([], 3)
        with pytest.raises(ValueError, match="num_runs"):
            sim.run_many([head_on_encounter()], 0)
        with pytest.raises(ValueError, match="seeds"):
            sim.run_many([head_on_encounter()], 3, seeds=[1, 2])

    def test_backend_simulate_matches_vectorized(self, test_table):
        # Single-scenario simulate() goes through the megabatch path
        # too, and must agree exactly with the "vectorized" backend.
        batch = make_backend("vectorized-batch", table=test_table)
        vec = make_backend("vectorized", table=test_table)
        params = tail_approach_encounter(overtake_speed=2.0)
        assert_results_equal(
            batch.simulate(params, 20, seed=7), vec.simulate(params, 20, seed=7)
        )


class TestBackendEquivalence:
    def test_exact_agreement_with_vectorized(self, test_table):
        # Stronger than statistical equivalence: the megabatch backend
        # replays the vectorized backend's noise streams per scenario,
        # so whole campaigns agree bit for bit.
        def run(backend):
            return Campaign(
                SampledSource(StatisticalEncounterModel(), 5),
                backend=backend,
                table=test_table,
                runs_per_scenario=8,
            ).run(seed=2016)

        assert_record_runs_equal(run("vectorized"), run("vectorized-batch"))

    @pytest.mark.slow
    def test_statistically_equivalent_to_agent(self, test_table):
        # Per-run randomness differs from the faithful agent engine,
        # but the reference encounter's outcome distribution must agree
        # (same NMAC rate / separation distribution within tolerance).
        def run(backend):
            return Campaign(
                tail_approach_encounter(overtake_speed=2.0),
                backend=backend,
                table=test_table,
                runs_per_scenario=40,
            ).run(seed=0)

        agent = run("agent")
        batch = run("vectorized-batch")
        a = agent.min_separations()
        v = batch.min_separations()
        pooled = np.sqrt((a.std() ** 2 + v.std() ** 2) / 2)
        assert abs(a.mean() - v.mean()) < max(3 * pooled, 20.0)
        assert abs(agent.nmac_rate - batch.nmac_rate) <= 0.25
        assert abs(agent.alert_rate - batch.alert_rate) <= 0.25


class TestChunkedExecution:
    @pytest.fixture(scope="class")
    def campaign(self, test_table):
        return Campaign(
            SampledSource(StatisticalEncounterModel(), 7),
            backend="vectorized-batch",
            table=test_table,
            runs_per_scenario=6,
        )

    def test_chunked_equals_unchunked_exactly(self, campaign):
        # Chunk boundaries cannot change any output bit: per-scenario
        # seeds and per-scenario noise streams make each lane's history
        # independent of which scenarios share its batch.
        unchunked = campaign.run(seed=5, chunk_size=7)
        for chunk_size in (1, 2, 3, 7, 50):
            chunked = campaign.run(seed=5, chunk_size=chunk_size)
            assert_record_runs_equal(unchunked, chunked)

    def test_chunk_size_validated(self, campaign):
        with pytest.raises(ValueError):
            campaign.run(seed=0, chunk_size=0)

    def test_streaming_matches_materialized(self, campaign):
        # iter_records is the streaming twin of run(): same records, in
        # index order, without materializing the list first.
        materialized = campaign.run(seed=9)
        streamed = list(campaign.iter_records(seed=9, chunk_size=3))
        assert [r.index for r in streamed] == list(range(len(materialized)))
        for rec_a, rec_b in zip(materialized, streamed):
            assert rec_a.name == rec_b.name
            assert_results_equal(rec_a.runs, rec_b.runs)

    def test_streaming_is_lazy(self, campaign):
        iterator = campaign.iter_records(seed=9)
        first = next(iterator)
        assert first.index == 0
        iterator.close()

    @pytest.mark.slow
    def test_parallel_streaming_matches_serial(self, campaign):
        serial = campaign.run(seed=4, workers=1, chunk_size=2)
        parallel = campaign.run(seed=4, workers=2, chunk_size=2)
        assert parallel.workers == 2
        assert_record_runs_equal(serial, parallel)


class TestBackendSpec:
    def test_capture_build_round_trip(self, test_table):
        backend = make_backend(
            "vectorized-batch",
            table=test_table,
            equipage="own-only",
            coordination=False,
        )
        spec = BackendSpec.capture(backend)
        rebuilt = spec.build()
        assert rebuilt.name == "vectorized-batch"
        assert rebuilt.equipage == "own-only"
        assert rebuilt.coordination is False
        np.testing.assert_array_equal(rebuilt.table.q, test_table.q)
        params = head_on_encounter()
        assert_results_equal(
            backend.simulate(params, 4, seed=1),
            rebuilt.simulate(params, 4, seed=1),
        )

    def test_capture_without_table(self):
        spec = BackendSpec.capture(make_backend("vectorized", equipage="none"))
        assert spec.table_bytes is None
        assert spec.build().equipage == "none"

    def test_capture_rejects_unregistered_instance(self, test_table):
        class Custom:
            name = "custom-unregistered"

        with pytest.raises(TypeError, match="not a registered backend"):
            BackendSpec.capture(Custom())

    def test_capture_rejects_protocol_only_backend(self):
        # A registered backend satisfying only the SimulationBackend
        # protocol (name + simulate) carries no construction surface to
        # capture; it must raise TypeError so parallel campaigns fall
        # back to pickling the instance instead of crashing.
        from repro.experiments import register_backend

        @register_backend("protocol-only-test")
        class Minimal:
            name = "protocol-only-test"

            def __init__(self, **kwargs):
                pass

            def simulate(self, params, num_runs, seed=None):
                raise NotImplementedError

        with pytest.raises(TypeError, match="missing construction"):
            BackendSpec.capture(Minimal())

    def test_spec_from_table_path(self, test_table, tmp_path):
        path = tmp_path / "table.npz"
        test_table.save(path)
        spec = BackendSpec(backend="agent", table_path=str(path))
        rebuilt = spec.build()
        assert rebuilt.name == "agent"
        np.testing.assert_array_equal(rebuilt.table.q, test_table.q)

    @pytest.mark.slow
    def test_parallel_campaign_rebuilds_backend_per_worker(self, test_table):
        # The pool initializer path: workers get a BackendSpec, not the
        # pickled backend, and the campaign result must not change.
        campaign = Campaign(
            SampledSource(StatisticalEncounterModel(), 6),
            backend="vectorized-batch",
            table=test_table,
            runs_per_scenario=4,
        )
        serial = campaign.run(seed=2016, workers=1, chunk_size=2)
        parallel = campaign.run(seed=2016, workers=3, chunk_size=2)
        assert parallel.workers == 3
        assert_record_runs_equal(serial, parallel)


class TestPopulationEvaluation:
    def test_ga_population_evaluated_in_one_campaign(self, test_table):
        from repro.search.fitness import CollisionRateFitness, EncounterFitness

        genomes = np.stack(
            [
                head_on_encounter().as_array(),
                tail_approach_encounter(overtake_speed=2.0).as_array(),
                head_on_encounter(miss_distance=400.0).as_array(),
            ]
        )
        fitness = EncounterFitness(test_table, num_runs=5, seed=0)
        values = fitness.evaluate_population(genomes)
        assert values.shape == (3,)
        assert np.all(np.isfinite(values)) and np.all(values > 0)
        assert fitness.evaluations == 3
        # The ablation subclass must keep its own scoring in the
        # population path.
        rate_fitness = CollisionRateFitness(test_table, num_runs=5, seed=0)
        rates = rate_fitness.evaluate_population(genomes)
        assert np.all((0.0 <= rates) & (rates <= 1.0))
