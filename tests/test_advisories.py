"""Tests for repro.acasx.advisories."""

import pytest

from repro.acasx.advisories import (
    ADVISORIES,
    CLIMB,
    COC,
    DESCEND,
    NUM_ADVISORIES,
    STRONG_CLIMB,
    STRONG_DESCEND,
    AdvisorySense,
    advisory_by_name,
    is_new_alert,
    is_reversal,
    is_strengthening,
)
from repro.util.units import G, fpm_to_mps


class TestVocabulary:
    def test_five_advisories(self):
        assert NUM_ADVISORIES == 5

    def test_indices_match_positions(self):
        for i, advisory in enumerate(ADVISORIES):
            assert advisory.index == i

    def test_coc_is_inactive(self):
        assert not COC.is_active
        assert COC.sense is AdvisorySense.NONE
        assert COC.strength == 0

    def test_climb_parameters(self):
        assert CLIMB.target_rate == pytest.approx(fpm_to_mps(1500))
        assert CLIMB.acceleration == pytest.approx(G / 4)
        assert CLIMB.sense is AdvisorySense.UP
        assert CLIMB.strength == 1

    def test_strong_advisories(self):
        assert STRONG_CLIMB.target_rate == pytest.approx(fpm_to_mps(2500))
        assert STRONG_CLIMB.acceleration == pytest.approx(G / 3)
        assert STRONG_DESCEND.target_rate == pytest.approx(-fpm_to_mps(2500))
        assert STRONG_CLIMB.strength == 2

    def test_senses_are_opposed(self):
        assert CLIMB.sense.opposite is AdvisorySense.DOWN
        assert DESCEND.sense.opposite is AdvisorySense.UP
        assert AdvisorySense.NONE.opposite is AdvisorySense.NONE

    def test_lookup_by_name(self):
        assert advisory_by_name("DESCEND") is DESCEND
        with pytest.raises(KeyError):
            advisory_by_name("HOVER")

    def test_str(self):
        assert str(CLIMB) == "CLIMB"


class TestTransitions:
    def test_reversal_detection(self):
        assert is_reversal(CLIMB, DESCEND)
        assert is_reversal(STRONG_DESCEND, CLIMB)
        assert not is_reversal(CLIMB, STRONG_CLIMB)
        assert not is_reversal(COC, DESCEND)

    def test_strengthening_detection(self):
        assert is_strengthening(CLIMB, STRONG_CLIMB)
        assert is_strengthening(DESCEND, STRONG_DESCEND)
        assert not is_strengthening(STRONG_CLIMB, CLIMB)  # weakening
        assert not is_strengthening(CLIMB, STRONG_DESCEND)  # reversal
        assert not is_strengthening(COC, STRONG_CLIMB)  # new alert

    def test_new_alert_detection(self):
        assert is_new_alert(COC, CLIMB)
        assert not is_new_alert(CLIMB, STRONG_CLIMB)
        assert not is_new_alert(COC, COC)


class TestCoordinationConflicts:
    def test_active_advisory_conflicts_with_same_sense(self):
        assert CLIMB.conflicts_with_sense(AdvisorySense.UP)
        assert not CLIMB.conflicts_with_sense(AdvisorySense.DOWN)

    def test_coc_never_conflicts(self):
        assert not COC.conflicts_with_sense(AdvisorySense.UP)
        assert not COC.conflicts_with_sense(AdvisorySense.DOWN)

    def test_none_lock_never_conflicts(self):
        assert not STRONG_DESCEND.conflicts_with_sense(AdvisorySense.NONE)
