"""Tests for geometry classification and safety metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.geometry import (
    classify_encounter,
    is_vertical_crossing,
    relative_horizontal_speed_of,
)
from repro.analysis.metrics import (
    false_alarm_rate,
    risk_ratio,
    wilson_interval,
)
from repro.encounters import head_on_encounter, tail_approach_encounter
from repro.encounters.encoding import EncounterParameters


def params_with_bearing(bearing, own_vs=0.0, intr_vs=0.0, gs=30.0):
    return EncounterParameters(
        own_ground_speed=gs,
        own_vertical_speed=own_vs,
        time_to_cpa=30.0,
        cpa_horizontal_distance=0.0,
        cpa_angle=0.0,
        cpa_vertical_distance=0.0,
        intruder_ground_speed=gs,
        intruder_bearing=bearing,
        intruder_vertical_speed=intr_vs,
    )


class TestClassifier:
    def test_head_on(self):
        assert classify_encounter(params_with_bearing(math.pi)) == "head-on"
        assert classify_encounter(head_on_encounter()) == "head-on"

    def test_tail(self):
        assert classify_encounter(params_with_bearing(0.1)) == "tail-approach"
        assert classify_encounter(tail_approach_encounter()) == "tail-approach"

    def test_crossing(self):
        assert classify_encounter(params_with_bearing(math.pi / 2)) == "crossing"

    def test_wrap_around(self):
        assert classify_encounter(params_with_bearing(2 * math.pi - 0.1)) == (
            "tail-approach"
        )

    @given(st.floats(-math.pi, math.pi))
    def test_always_returns_valid_class(self, bearing):
        assert classify_encounter(params_with_bearing(bearing)) in (
            "head-on",
            "tail-approach",
            "crossing",
        )


class TestVerticalCrossing:
    def test_opposite_rates(self):
        assert is_vertical_crossing(params_with_bearing(0.0, -2.0, 2.0))

    def test_same_direction_not_crossing(self):
        assert not is_vertical_crossing(params_with_bearing(0.0, 2.0, 2.0))

    def test_level_not_crossing(self):
        assert not is_vertical_crossing(params_with_bearing(0.0, 0.0, 0.3))


class TestRelativeSpeed:
    def test_head_on_doubles(self):
        params = params_with_bearing(math.pi, gs=20.0)
        assert relative_horizontal_speed_of(params) == pytest.approx(40.0)

    def test_parallel_same_speed_is_zero(self):
        params = params_with_bearing(0.0, gs=20.0)
        assert relative_horizontal_speed_of(params) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_tail_approach_small(self):
        params = tail_approach_encounter(overtake_speed=2.0)
        assert relative_horizontal_speed_of(params) == pytest.approx(2.0)


class TestWilsonInterval:
    def test_basic_properties(self):
        estimate = wilson_interval(5, 100)
        assert estimate.rate == pytest.approx(0.05)
        assert 0.0 <= estimate.low <= estimate.rate <= estimate.high <= 1.0

    def test_zero_successes_has_positive_upper_bound(self):
        estimate = wilson_interval(0, 100)
        assert estimate.low == 0.0
        assert estimate.high > 0.0

    def test_all_successes(self):
        estimate = wilson_interval(50, 50)
        assert estimate.high == 1.0
        assert estimate.low < 1.0

    def test_narrower_with_more_trials(self):
        small = wilson_interval(5, 50)
        large = wilson_interval(100, 1000)
        assert (large.high - large.low) < (small.high - small.low)

    def test_higher_confidence_is_wider(self):
        narrow = wilson_interval(10, 100, confidence=0.9)
        wide = wilson_interval(10, 100, confidence=0.99)
        assert (wide.high - wide.low) > (narrow.high - narrow.low)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_str(self):
        assert "95% CI" in str(wilson_interval(3, 30))

    @given(st.integers(0, 100))
    def test_interval_contains_point_estimate(self, successes):
        estimate = wilson_interval(successes, 100)
        assert estimate.low <= estimate.rate <= estimate.high


class TestRiskRatio:
    def test_perfect_system(self):
        assert risk_ratio(0, 100, 50, 100) == 0.0

    def test_useless_system(self):
        assert risk_ratio(50, 100, 50, 100) == pytest.approx(1.0)

    def test_harmful_system(self):
        assert risk_ratio(80, 100, 40, 100) == pytest.approx(2.0)

    def test_zero_baseline_gives_inf(self):
        assert risk_ratio(1, 100, 0, 100) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            risk_ratio(0, 0, 1, 10)


class TestFalseAlarmRate:
    def test_all_alerts_necessary(self):
        alerted = np.array([True, True, False])
        unmitigated = np.array([True, True, False])
        assert false_alarm_rate(alerted, unmitigated) == 0.0

    def test_all_alerts_spurious(self):
        alerted = np.array([True, True])
        unmitigated = np.array([False, False])
        assert false_alarm_rate(alerted, unmitigated) == 1.0

    def test_mixed(self):
        alerted = np.array([True, True, True, False])
        unmitigated = np.array([True, False, False, True])
        assert false_alarm_rate(alerted, unmitigated) == pytest.approx(2 / 3)

    def test_no_alerts(self):
        assert false_alarm_rate(np.zeros(3, bool), np.ones(3, bool)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            false_alarm_rate(np.zeros(3, bool), np.zeros(4, bool))
