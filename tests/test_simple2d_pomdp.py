"""Tests for the partial-observability extension of the toy model."""

import numpy as np
import pytest

from repro.simple2d import Simple2DModel
from repro.simple2d.pomdp import (
    BeliefFilter,
    ObservationModel,
    QmdpPolicy,
    evaluate_under_partial_observability,
)


@pytest.fixture(scope="module")
def model():
    return Simple2DModel()


@pytest.fixture(scope="module")
def table(model):
    return model.solve()


NOISY = ObservationModel(
    noise=((0, 0.4), (-1, 0.2), (1, 0.2), (-2, 0.1), (2, 0.1))
)
NOISELESS = ObservationModel(noise=((0, 1.0),))


class TestObservationModel:
    def test_noise_must_normalize(self):
        with pytest.raises(ValueError):
            ObservationModel(noise=((0, 0.5), (1, 0.2)))

    def test_sample_clipped_to_grid(self):
        rng = np.random.default_rng(0)
        for __ in range(50):
            assert abs(NOISY.sample(3, 3, rng)) <= 3

    def test_likelihood_columns_normalize(self, model):
        likelihood = NOISY.likelihood_matrix(model.y_values)
        np.testing.assert_allclose(likelihood.sum(axis=0), 1.0)

    def test_noiseless_likelihood_is_identity(self, model):
        likelihood = NOISELESS.likelihood_matrix(model.y_values)
        np.testing.assert_allclose(likelihood, np.eye(model.num_y))


class TestBeliefFilter:
    def test_belief_normalized_through_cycle(self, model):
        filter_ = BeliefFilter(model, NOISY)
        rng = np.random.default_rng(1)
        for __ in range(20):
            filter_.update(int(rng.integers(-3, 4)))
            assert filter_.belief.sum() == pytest.approx(1.0)
            assert np.all(filter_.belief >= 0)
            filter_.predict()
            assert filter_.belief.sum() == pytest.approx(1.0)

    def test_point_prior(self, model):
        filter_ = BeliefFilter(model, NOISY)
        filter_.reset(2)
        assert filter_.belief[model.y_index(2)] == 1.0
        assert filter_.map_estimate() == 2

    def test_noiseless_observation_collapses_belief(self, model):
        filter_ = BeliefFilter(model, NOISELESS)
        filter_.reset(None)  # uniform
        filter_.update(1)
        assert filter_.map_estimate() == 1
        assert filter_.belief[model.y_index(1)] == pytest.approx(1.0)

    def test_repeated_observations_concentrate_belief(self, model):
        filter_ = BeliefFilter(model, NOISY)
        filter_.reset(None)
        entropy_before = -(filter_.belief * np.log(filter_.belief + 1e-12)).sum()
        for __ in range(5):
            filter_.update(0)
        entropy_after = -(filter_.belief * np.log(filter_.belief + 1e-12)).sum()
        assert entropy_after < entropy_before
        assert filter_.map_estimate() == 0

    def test_prediction_diffuses_belief(self, model):
        filter_ = BeliefFilter(model, NOISY)
        filter_.reset(0)
        filter_.predict()
        assert filter_.belief[model.y_index(0)] < 1.0
        assert filter_.belief[model.y_index(1)] > 0.0


class TestQmdpPolicy:
    def test_matches_mdp_policy_with_point_belief(self, model, table):
        filter_ = BeliefFilter(model, NOISELESS)
        policy = QmdpPolicy(table, filter_)
        for y_intr in range(-3, 4):
            for y_own in range(-3, 4):
                for x_r in (1, 3, 6):
                    filter_.reset(y_intr)
                    assert policy.action(y_own, x_r) == table.action(
                        y_own, x_r, y_intr
                    )

    def test_level_off_after_encounter(self, model, table):
        filter_ = BeliefFilter(model, NOISY)
        policy = QmdpPolicy(table, filter_)
        assert policy.action(0, 0) == 0

    def test_q_values_requires_solved_table(self, model):
        from repro.simple2d.model import Simple2DLogicTable

        bare = Simple2DLogicTable(model, [], [])
        with pytest.raises(RuntimeError):
            bare.q_values(0, 1)


class TestEvaluation:
    def test_noiseless_matches_fully_observable(self, table):
        qmdp = evaluate_under_partial_observability(
            table, NOISELESS, use_qmdp=True, runs=400, seed=0
        )
        ce = evaluate_under_partial_observability(
            table, NOISELESS, use_qmdp=False, runs=400, seed=0
        )
        # With perfect observations the two controllers are identical.
        assert qmdp.collision_rate == ce.collision_rate
        assert qmdp.mean_return == ce.mean_return

    def test_qmdp_beats_certainty_equivalence_under_noise(self, table):
        qmdp = evaluate_under_partial_observability(
            table, NOISY, use_qmdp=True, runs=2000, seed=3
        )
        ce = evaluate_under_partial_observability(
            table, NOISY, use_qmdp=False, runs=2000, seed=3
        )
        # Belief tracking recovers return lost to observation noise.
        assert qmdp.mean_return > ce.mean_return

    def test_result_fields(self, table):
        result = evaluate_under_partial_observability(
            table, NOISY, use_qmdp=True, runs=50, seed=1
        )
        assert result.runs == 50
        assert 0.0 <= result.collision_rate <= 1.0
