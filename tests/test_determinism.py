"""Determinism regression tests.

Every experiment in the library must be a pure function of its seed.
These tests pin that property across subsystem boundaries (two fully
independent executions, not object reuse) so accidental global-RNG
usage or hidden state is caught immediately.
"""

import numpy as np

from repro.encounters import StatisticalEncounterModel, head_on_encounter
from repro.montecarlo import MonteCarloEstimator
from repro.search.fitness import EncounterFitness
from repro.search.ga import GAConfig
from repro.search.runner import SearchRunner
from repro.sim import BatchEncounterSimulator, EncounterSimConfig, run_encounter
from repro.sim.airspace import AirspaceSimulation
from repro.sim.encounter import make_acas_pair


def test_encounter_run_bitwise_reproducible(test_table):
    results = []
    for __ in range(2):
        own, intruder = make_acas_pair(test_table)
        result = run_encounter(
            head_on_encounter(), own, intruder, EncounterSimConfig(),
            seed=1234, record_trace=True,
        )
        results.append(result)
    a, b = results
    assert a.min_separation == b.min_separation
    assert a.nmac == b.nmac
    for step_a, step_b in zip(a.trace.steps, b.trace.steps):
        np.testing.assert_array_equal(step_a.own_position, step_b.own_position)
        np.testing.assert_array_equal(
            step_a.intruder_position, step_b.intruder_position
        )
        assert step_a.own_advisory == step_b.own_advisory


def test_batch_run_bitwise_reproducible(test_table):
    runs = []
    for __ in range(2):
        simulator = BatchEncounterSimulator(test_table, EncounterSimConfig())
        runs.append(simulator.run(head_on_encounter(), 20, seed=99))
    np.testing.assert_array_equal(runs[0].min_separation, runs[1].min_separation)
    np.testing.assert_array_equal(runs[0].nmac, runs[1].nmac)


def test_search_reproducible(test_table):
    outcomes = []
    for __ in range(2):
        runner = SearchRunner(
            test_table,
            ga_config=GAConfig(population_size=8, generations=2),
            num_runs=4,
        )
        outcomes.append(runner.run(seed=5))
    a, b = outcomes
    np.testing.assert_array_equal(
        a.ga_result.best_genome, b.ga_result.best_genome
    )
    assert a.ga_result.best_fitness == b.ga_result.best_fitness
    for fa, fb in zip(a.ga_result.fitness_history, b.ga_result.fitness_history):
        np.testing.assert_array_equal(fa, fb)


def test_montecarlo_reproducible(test_table):
    reports = []
    for __ in range(2):
        estimator = MonteCarloEstimator(
            test_table, StatisticalEncounterModel(), runs_per_encounter=3
        )
        reports.append(estimator.estimate(8, seed=11))
    assert reports[0].summary() == reports[1].summary()


def test_airspace_reproducible(test_table):
    results = []
    for __ in range(2):
        simulation = AirspaceSimulation(test_table)
        results.append(simulation.run(4, duration=40.0, seed=21))
    assert results[0].min_pair_separation == results[1].min_pair_separation
    assert results[0].nmac_pairs == results[1].nmac_pairs
    assert results[0].alerts_by_aircraft == results[1].alerts_by_aircraft


def test_global_numpy_rng_untouched(test_table):
    """Library calls must not consume or reseed the global NumPy RNG."""
    np.random.seed(42)
    expected = np.random.RandomState(42).uniform(size=3)
    fitness = EncounterFitness(test_table, num_runs=3, seed=0)
    fitness(head_on_encounter().as_array())
    observed = np.random.uniform(size=3)
    np.testing.assert_array_equal(observed, expected)
