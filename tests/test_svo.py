"""Tests for the Selective Velocity Obstacle baseline."""

import math

import numpy as np
import pytest

from repro.avoidance.base import NoAvoidance
from repro.avoidance.svo import SelectiveVelocityObstacle, _wrap_angle
from repro.dynamics.aircraft import AircraftState


def state(x=0.0, y=0.0, z=1000.0, vx=0.0, vy=0.0, vz=0.0):
    return AircraftState(np.array([x, y, z]), np.array([vx, vy, vz]))


class TestWrapAngle:
    def test_wraps_into_pi(self):
        # ±π are the same heading; floating point may yield either sign.
        assert abs(_wrap_angle(3 * math.pi)) == pytest.approx(math.pi)
        assert abs(_wrap_angle(-3 * math.pi)) == pytest.approx(math.pi)
        assert _wrap_angle(0.3) == pytest.approx(0.3)
        assert _wrap_angle(2 * math.pi + 0.5) == pytest.approx(0.5)


class TestConflictDetection:
    def test_head_on_is_conflict(self):
        svo = SelectiveVelocityObstacle(protected_radius=100.0)
        rel_pos = np.array([1000.0, 0.0])
        rel_vel = np.array([20.0, 0.0])  # own moving toward intruder
        assert svo._in_conflict(rel_pos, rel_vel)

    def test_diverging_is_not_conflict(self):
        svo = SelectiveVelocityObstacle(protected_radius=100.0)
        assert not svo._in_conflict(
            np.array([1000.0, 0.0]), np.array([-20.0, 0.0])
        )

    def test_passing_wide_is_not_conflict(self):
        svo = SelectiveVelocityObstacle(protected_radius=50.0)
        # Relative velocity pointing well off the intruder bearing.
        assert not svo._in_conflict(
            np.array([1000.0, 0.0]), np.array([10.0, 15.0])
        )

    def test_inside_protected_zone_is_conflict(self):
        svo = SelectiveVelocityObstacle(protected_radius=100.0)
        assert svo._in_conflict(np.array([50.0, 0.0]), np.array([0.1, 0.0]))

    def test_beyond_lookahead_ignored(self):
        svo = SelectiveVelocityObstacle(protected_radius=50.0, lookahead=10.0)
        # 1000 m away closing at 1 m/s: 950 s out.
        assert not svo._in_conflict(
            np.array([1000.0, 0.0]), np.array([1.0, 0.0])
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SelectiveVelocityObstacle(protected_radius=0.0)


class TestDecide:
    def test_no_conflict_no_maneuver(self):
        svo = SelectiveVelocityObstacle()
        maneuver = svo.decide(state(vx=20.0), state(x=-2000.0, vx=20.0))
        assert not maneuver.is_active
        assert not svo.ever_alerted

    def test_head_on_commands_turn(self):
        svo = SelectiveVelocityObstacle()
        maneuver = svo.decide(state(vx=20.0), state(x=2000.0, vx=-20.0))
        assert maneuver.heading is not None
        assert svo.ever_alerted

    def test_prefers_right_turn(self):
        # Symmetric head-on: the selective rule resolves to the right
        # (negative heading offset from a +x track).
        svo = SelectiveVelocityObstacle()
        maneuver = svo.decide(state(vx=20.0), state(x=2000.0, vx=-20.0))
        assert _wrap_angle(maneuver.heading.target_heading) < 0.0

    def test_commanded_heading_clears_cone(self):
        svo = SelectiveVelocityObstacle()
        own = state(vx=20.0)
        intruder = state(x=2000.0, vx=-20.0)
        maneuver = svo.decide(own, intruder)
        heading = maneuver.heading.target_heading
        new_vel = 20.0 * np.array([math.cos(heading), math.sin(heading)])
        rel_vel = new_vel - intruder.velocity[:2]
        rel_pos = intruder.position[:2] - own.position[:2]
        assert not svo._in_conflict(rel_pos, rel_vel)

    def test_hovering_ownship_cannot_steer(self):
        svo = SelectiveVelocityObstacle()
        maneuver = svo.decide(state(), state(x=500.0, vx=-20.0))
        assert maneuver.heading is None

    def test_reset_clears_alert_flag(self):
        svo = SelectiveVelocityObstacle()
        svo.decide(state(vx=20.0), state(x=2000.0, vx=-20.0))
        svo.reset()
        assert not svo.ever_alerted

    def test_name(self):
        assert SelectiveVelocityObstacle().name == "SVO"
        assert NoAvoidance().name == "NoAvoidance"
