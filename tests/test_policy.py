"""Tests for repro.mdp.policy (logic-table container)."""

import numpy as np
import pytest

from repro.mdp.policy import TabularPolicy, policies_agree


@pytest.fixture
def policy():
    return TabularPolicy(
        actions=np.array([0, 1, 2, 1]),
        action_names=("hold", "up", "down"),
        values=np.array([0.0, -1.0, 2.0, 3.0]),
        metadata={"source": "test"},
    )


class TestTabularPolicy:
    def test_basic_accessors(self, policy):
        assert policy.num_states == 4
        assert policy.action(1) == 1
        assert policy.action_name(2) == "down"

    def test_action_counts(self, policy):
        assert policy.action_counts() == {"hold": 1, "up": 2, "down": 1}

    def test_rejects_out_of_range_actions(self):
        with pytest.raises(ValueError):
            TabularPolicy(np.array([0, 5]), action_names=("a", "b"))

    def test_rejects_misaligned_values(self):
        with pytest.raises(ValueError):
            TabularPolicy(
                np.array([0, 1]), action_names=("a", "b"), values=np.zeros(3)
            )

    def test_rejects_2d_actions(self):
        with pytest.raises(ValueError):
            TabularPolicy(np.zeros((2, 2), dtype=int), action_names=("a",))

    def test_save_load_round_trip(self, policy, tmp_path):
        path = tmp_path / "policy.npz"
        policy.save(path)
        loaded = TabularPolicy.load(path)
        np.testing.assert_array_equal(loaded.actions, policy.actions)
        np.testing.assert_array_equal(loaded.values, policy.values)
        assert list(loaded.action_names) == list(policy.action_names)
        assert loaded.metadata == {"source": "test"}

    def test_save_load_without_values(self, tmp_path):
        policy = TabularPolicy(np.array([0, 0]), action_names=("a",))
        path = tmp_path / "p.npz"
        policy.save(path)
        assert TabularPolicy.load(path).values is None


class TestPoliciesAgree:
    def test_identical_policies_agree(self, policy):
        other = TabularPolicy(policy.actions.copy(), policy.action_names)
        assert policies_agree(policy, other)

    def test_different_policies_disagree_without_q(self, policy):
        other = TabularPolicy(
            np.array([1, 1, 2, 1]), action_names=policy.action_names
        )
        assert not policies_agree(policy, other)

    def test_tied_q_values_count_as_agreement(self, policy):
        other = TabularPolicy(
            np.array([1, 1, 2, 1]), action_names=policy.action_names
        )
        q = np.zeros((3, 4))  # all actions tie everywhere
        assert policies_agree(policy, other, q_values=q)

    def test_untied_q_values_detect_disagreement(self, policy):
        other = TabularPolicy(
            np.array([1, 1, 2, 1]), action_names=policy.action_names
        )
        q = np.zeros((3, 4))
        q[0, 0] = 10.0  # state 0: action 0 strictly better
        assert not policies_agree(policy, other, q_values=q)

    def test_size_mismatch_raises(self, policy):
        other = TabularPolicy(np.array([0]), action_names=policy.action_names)
        with pytest.raises(ValueError):
            policies_agree(policy, other)
