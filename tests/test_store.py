"""Tests for the persistent campaign result store (`repro.store`).

Covers the content-addressed :class:`CampaignSpec` identity, sqlite
roundtrips, the resume/dedup contract of ``Campaign.run(store=...)`` /
``iter_records(store=...)`` — an interrupted campaign resumed from the
store must be bitwise identical to an uninterrupted run, and a
completed spec must re-run with zero new simulations — plus the
lossless seed-entropy export, cross-campaign queries/diffs, and the
pipelines (Monte-Carlo, search) that log through the store.
"""

import json
from itertools import islice

import numpy as np
import pytest

from repro.encounters import StatisticalEncounterModel, head_on_encounter
from repro.experiments import Campaign, ResultSet, SampledSource
from repro.montecarlo import MonteCarloEstimator
from repro.search.ga import GAConfig
from repro.search.runner import SearchRunner
from repro.store import CampaignSpec, ResultStore


@pytest.fixture
def store():
    with ResultStore(":memory:") as result_store:
        yield result_store


def make_campaign(table, scenarios=6, runs=4):
    return Campaign(
        SampledSource(StatisticalEncounterModel(), scenarios),
        table=table,
        runs_per_scenario=runs,
    )


def assert_records_identical(a: ResultSet, b: ResultSet) -> None:
    """Bitwise equality of two result sets' records."""
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra.index == rb.index
        assert ra.name == rb.name
        assert ra.params == rb.params
        for field in (
            "min_separation",
            "min_horizontal",
            "nmac",
            "own_alerted",
            "intruder_alerted",
        ):
            np.testing.assert_array_equal(
                getattr(ra.runs, field), getattr(rb.runs, field)
            )


class TestCampaignSpec:
    def _spec(self, campaign, seed):
        scenario_list, _, _ = campaign._plan(seed, 1, None)
        return CampaignSpec.capture(campaign, scenario_list, seed)

    def test_identity_is_stable(self, test_table):
        a = self._spec(make_campaign(test_table), 7)
        b = self._spec(make_campaign(test_table), 7)
        assert a.campaign_id == b.campaign_id

    def test_identity_covers_every_input(self, test_table):
        base = self._spec(make_campaign(test_table), 7)
        assert self._spec(make_campaign(test_table), 8) != base
        assert (
            self._spec(make_campaign(test_table, scenarios=5), 7).campaign_id
            != base.campaign_id
        )
        assert (
            self._spec(make_campaign(test_table, runs=5), 7).campaign_id
            != base.campaign_id
        )
        unequipped = Campaign(
            SampledSource(StatisticalEncounterModel(), 6),
            equipage="none",
            runs_per_scenario=4,
        )
        assert self._spec(unequipped, 7).campaign_id != base.campaign_id

    def test_spawned_seeds_are_distinct_campaigns(self, test_table, store):
        # Children of one SeedSequence share its entropy and differ
        # only in spawn_key; each must be its own campaign, or a
        # "resume" would return another seed's results.  Fresh child
        # objects throughout: planning spawns from the sequence, and
        # the spawn counter is part of the identity too.
        def child(i):
            return np.random.SeedSequence(42).spawn(2)[i]

        spec_a = self._spec(make_campaign(test_table), child(0))
        spec_b = self._spec(make_campaign(test_table), child(1))
        assert spec_a.campaign_id != spec_b.campaign_id

        make_campaign(test_table, scenarios=2, runs=2).run(
            seed=child(0), store=store
        )
        run_b = make_campaign(test_table, scenarios=2, runs=2).run(
            seed=child(1), store=store
        )
        assert run_b.metadata["simulated"] == 2  # no false resume
        baseline_b = make_campaign(test_table, scenarios=2, runs=2).run(
            seed=child(1)
        )
        assert_records_identical(run_b, baseline_b)
        # Same child re-derived: a genuine resume.
        again = make_campaign(test_table, scenarios=2, runs=2).run(
            seed=child(1), store=store
        )
        assert again.metadata["simulated"] == 0

    def test_entropy_hashes_as_decimal_string(self, test_table):
        # 128-bit entropy must contribute its exact value to the id.
        big = 2**80 + 1
        near = 2**80  # same float64, different int
        assert float(big) == float(near)
        spec_a = self._spec(make_campaign(test_table), big)
        spec_b = self._spec(make_campaign(test_table), near)
        assert spec_a.campaign_id != spec_b.campaign_id


class TestStoreRoundtrip:
    def test_ingest_and_reconstruct(self, test_table, store):
        results = make_campaign(test_table).run(seed=3)
        campaign_id = store.ingest(results, label="unit")
        rebuilt = store.resultset(campaign_id)
        assert_records_identical(results, rebuilt)
        assert rebuilt.backend == results.backend
        assert rebuilt.equipage == results.equipage
        assert rebuilt.coordination == results.coordination
        assert rebuilt.runs_per_scenario == results.runs_per_scenario
        assert rebuilt.seed_entropy == results.seed_entropy
        assert rebuilt.workers == results.workers
        assert rebuilt.metadata["label"] == "unit"
        assert rebuilt.aggregates()["nmac_rate"] == pytest.approx(
            results.aggregates()["nmac_rate"]
        )

    def test_different_outcomes_never_alias_on_ingest(
        self, test_table, store
    ):
        # The ingest path cannot see the logic table, so identical
        # provenance with different outcomes (e.g. a re-solved table)
        # must land as a separate campaign, not dedup into stale rows.
        results = make_campaign(test_table).run(seed=3)
        first = store.ingest(results, label="original")
        tweaked = make_campaign(test_table).run(seed=3)
        tweaked.records[0].runs.min_separation[0] += 1.0
        second = store.ingest(tweaked, label="changed-table")
        assert first != second
        assert len(store.campaigns()) == 2
        np.testing.assert_array_equal(
            store.resultset(first)[0].runs.min_separation,
            results[0].runs.min_separation,
        )

    def test_reingest_dedups_to_same_campaign(self, test_table, store):
        results = make_campaign(test_table).run(seed=3)
        first = store.ingest(results, label="unit")
        second = store.ingest(results, label="unit")
        assert first == second
        assert len(store.campaigns()) == 1
        assert len(store.records(first)) == len(results)

    def test_add_record_dedup(self, test_table, store):
        results = make_campaign(test_table).run(seed=3)
        campaign_id = store.ingest(results, label="unit")
        assert store.add_record(campaign_id, results[0]) is False
        assert store.get_campaign(campaign_id).completed == len(results)

    def test_prefix_resolution(self, test_table, store):
        results = make_campaign(test_table).run(seed=3)
        campaign_id = store.ingest(results)
        assert store.resolve(campaign_id[:10]) == campaign_id
        with pytest.raises(KeyError, match="no campaign"):
            store.resolve("feedc0ffee")

    def test_export_parity_with_direct_tojson(
        self, test_table, store, tmp_path
    ):
        results = make_campaign(test_table).run(seed=3)
        campaign_id = store.ingest(results)
        direct = json.loads(
            results.to_json(tmp_path / "direct.json").read_text()
        )
        exported = json.loads(
            store.export_json(campaign_id, tmp_path / "stored.json")
            .read_text()
        )
        assert exported["scenarios"] == direct["scenarios"]
        for key in ("backend", "equipage", "coordination",
                    "runs_per_scenario", "seed_entropy"):
            assert exported[key] == direct[key]
        direct_csv = results.to_csv(tmp_path / "direct.csv").read_text()
        stored_csv = store.export_csv(
            campaign_id, tmp_path / "stored.csv"
        ).read_text()
        assert stored_csv == direct_csv

    def test_cross_campaign_record_query(self, test_table, store):
        store.ingest(make_campaign(test_table).run(seed=3), label="a")
        store.ingest(make_campaign(test_table).run(seed=4), label="b")
        everywhere = store.records()
        assert len(everywhere) == 12
        assert len({r.campaign_id for r in everywhere}) == 2
        risky = store.records(where="nmac_rate > ?", params=(0.0,))
        assert all(r.record.nmac_rate > 0.0 for r in risky)


class TestSeedEntropyProvenance:
    def test_big_entropy_roundtrips_losslessly(self, test_table, store):
        # SeedSequence default entropy is 128-bit; 2^80 + 1 would be
        # silently truncated by any float path.
        entropy = 2**80 + 1
        assert float(entropy) == float(entropy - 1)  # beyond float53
        results = make_campaign(
            test_table, scenarios=2, runs=2
        ).run(seed=np.random.SeedSequence(entropy))
        assert results.seed_entropy == entropy
        campaign_id = store.ingest(results)
        assert store.resultset(campaign_id).seed_entropy == entropy

    def test_to_json_exports_entropy_as_string(
        self, test_table, tmp_path
    ):
        entropy = 2**80 + 1
        results = make_campaign(test_table, scenarios=2, runs=2).run(
            seed=np.random.SeedSequence(entropy)
        )
        payload = json.loads(
            results.to_json(tmp_path / "c.json").read_text()
        )
        assert payload["seed_entropy"] == str(entropy)
        assert ResultSet.parse_seed_entropy(
            payload["seed_entropy"]
        ) == entropy

    def test_parse_seed_entropy_rejects_float(self):
        assert ResultSet.parse_seed_entropy(None) is None
        assert ResultSet.parse_seed_entropy(17) == 17
        assert ResultSet.parse_seed_entropy("17") == 17
        with pytest.raises(TypeError, match="float"):
            ResultSet.parse_seed_entropy(float(2**80))


class TestResumeAndDedup:
    def test_interrupted_campaign_resumes_bitwise_identical(
        self, test_table, store
    ):
        baseline = make_campaign(test_table).run(seed=2016)

        # Kill the campaign mid-stream: consume three records through a
        # store-backed stream (each persisted before being yielded),
        # then abandon the iterator.
        stream = make_campaign(test_table).iter_records(
            seed=2016, store=store, chunk_size=1
        )
        consumed = list(islice(stream, 3))
        stream.close()
        assert len(consumed) == 3
        partial = store.campaigns()[0]
        assert 0 < partial.completed < len(baseline)

        # Re-running the same spec simulates only the missing tail...
        resumed = make_campaign(test_table).run(seed=2016, store=store)
        assert resumed.metadata["loaded"] == partial.completed
        assert (
            resumed.metadata["simulated"]
            == len(baseline) - partial.completed
        )
        # ...and the merged result is bitwise identical to the
        # uninterrupted storeless run.
        assert_records_identical(baseline, resumed)

    def test_completed_spec_reruns_with_zero_simulations(
        self, test_table, store
    ):
        first = make_campaign(test_table).run(seed=2016, store=store)
        assert first.metadata["simulated"] == len(first)
        again = make_campaign(test_table).run(seed=2016, store=store)
        assert again.metadata["simulated"] == 0
        assert again.metadata["loaded"] == len(first)
        assert_records_identical(first, again)

    def test_different_seed_is_a_different_campaign(
        self, test_table, store
    ):
        make_campaign(test_table).run(seed=1, store=store)
        other = make_campaign(test_table).run(seed=2, store=store)
        assert other.metadata["simulated"] == len(other)
        assert len(store.campaigns()) == 2

    def test_streaming_resume_merges_in_index_order(
        self, test_table, store
    ):
        # Persist a strided subset, then stream the full campaign.
        campaign = make_campaign(test_table)
        full = campaign.run(seed=5)
        stream = campaign.iter_records(seed=5, store=store, chunk_size=1)
        kept = [next(stream) for _ in range(2)]
        stream.close()
        merged = list(campaign.iter_records(seed=5, store=store))
        assert [r.index for r in merged] == list(range(len(full)))
        assert_records_identical(
            full,
            ResultSet(
                records=merged,
                backend=full.backend,
                equipage=full.equipage,
                coordination=full.coordination,
                runs_per_scenario=full.runs_per_scenario,
            ),
        )

    @pytest.mark.slow
    def test_resume_through_parallel_path(self, test_table, store):
        def campaign():
            return make_campaign(test_table)

        baseline = campaign().run(seed=2016, chunk_size=1)
        stream = campaign().iter_records(
            seed=2016, store=store, chunk_size=1
        )
        list(islice(stream, 3))
        stream.close()
        resumed = campaign().run(
            seed=2016, store=store, workers=4, chunk_size=1
        )
        assert resumed.metadata["simulated"] == len(baseline) - 3
        assert_records_identical(baseline, resumed)
        # And a full re-run through the pool is also zero simulations.
        again = campaign().run(
            seed=2016, store=store, workers=4, chunk_size=1
        )
        assert again.metadata["simulated"] == 0
        assert_records_identical(baseline, again)


class TestCrossCampaignDiff:
    def test_equipped_vs_unequipped(self, test_table, store):
        scenarios = SampledSource(StatisticalEncounterModel(), 4)
        equipped = Campaign(
            scenarios, table=test_table, runs_per_scenario=4
        ).run(seed=9, store=store)
        unequipped = Campaign(
            scenarios, equipage="none", runs_per_scenario=4
        ).run(seed=9, store=store)
        diff = store.diff(
            equipped.metadata["campaign_id"],
            unequipped.metadata["campaign_id"],
        )
        # Same seed, same scenario list: the diff pairs per scenario.
        assert len(diff.paired_nmac) == 4
        assert diff.aggregates_b["nmac_rate"] >= diff.aggregates_a[
            "nmac_rate"
        ]
        text = diff.summary()
        assert "nmac_rate" in text
        assert "paired scenarios: 4" in text


class TestPipelinesLogThroughStore:
    def test_montecarlo_logs_both_arms(self, test_table, store):
        estimator = MonteCarloEstimator(
            test_table,
            StatisticalEncounterModel(),
            runs_per_encounter=2,
            store=store,
        )
        report = estimator.estimate(3, seed=0)
        campaigns = store.campaigns()
        assert len(campaigns) == 2
        assert {c.equipage for c in campaigns} == {"both", "none"}
        assert all(c.complete for c in campaigns)
        # Re-estimating with the same seed resumes both arms entirely.
        rerun = MonteCarloEstimator(
            test_table,
            StatisticalEncounterModel(),
            runs_per_encounter=2,
            store=store,
        ).estimate(3, seed=0)
        assert rerun.equipped_results.metadata["simulated"] == 0
        assert rerun.unequipped_results.metadata["simulated"] == 0
        assert rerun.risk_ratio == pytest.approx(report.risk_ratio)

    def test_search_logs_generation_campaigns(self, test_table, store):
        runner = SearchRunner(
            test_table,
            ga_config=GAConfig(population_size=6, generations=2),
            num_runs=2,
            store=store,
        )
        runner.run(seed=0, top_k=2)
        campaigns = store.campaigns()
        assert len(campaigns) >= 2  # one fitness campaign per generation
        assert all(c.complete for c in campaigns)


class TestStoreMisc:
    def test_explicit_campaign_roundtrip(self, test_table, store):
        results = Campaign(
            [head_on_encounter()], table=test_table, runs_per_scenario=3
        ).run(seed=0, store=store)
        rebuilt = store.resultset(results.metadata["campaign_id"])
        assert_records_identical(results, rebuilt)

    def test_wall_time_counts_only_simulating_runs(
        self, test_table, store
    ):
        results = make_campaign(test_table, scenarios=2, runs=2).run(
            seed=0, store=store
        )
        info = store.get_campaign(results.metadata["campaign_id"])
        assert info.wall_time > 0.0
        assert info.cpu_count is not None
        assert info.metadata["workers"] == 1
        # A pure-load resume performs no simulation and must leave the
        # stored timing untouched.
        make_campaign(test_table, scenarios=2, runs=2).run(
            seed=0, store=store
        )
        again = store.get_campaign(results.metadata["campaign_id"])
        assert again.wall_time == info.wall_time

    def test_sql_aggregates_match_resultset(self, test_table, store):
        results = make_campaign(test_table).run(seed=3, store=store)
        campaign_id = results.metadata["campaign_id"]
        from_sql = store.aggregates(campaign_id)
        reference = results.aggregates()
        for key in ("scenarios", "total_runs", "nmac_count"):
            assert from_sql[key] == reference[key]
        for key in ("nmac_rate", "alert_rate", "mean_min_separation",
                    "worst_min_separation"):
            assert from_sql[key] == pytest.approx(reference[key])

    def test_persistent_store_on_disk(self, test_table, tmp_path):
        path = tmp_path / "nested" / "results.sqlite"
        with ResultStore(path) as store:
            results = make_campaign(test_table, scenarios=2, runs=2).run(
                seed=0, store=store
            )
            campaign_id = results.metadata["campaign_id"]
        with ResultStore(path) as reopened:
            rebuilt = reopened.resultset(campaign_id)
            assert_records_identical(results, rebuilt)


class TestFilterHardening:
    """User-supplied --where filters must stay single expressions.

    ``records(where=...)``/``campaigns(where=...)`` interpolate the
    filter into the query by design (it is an expression over the row
    columns); statement separators and comment sequences are rejected
    up front, and filters that sqlite itself chokes on surface as a
    clean one-line ``ValueError`` instead of a sqlite traceback.
    """

    @pytest.mark.parametrize(
        "where",
        [
            "nmac_rate > 0; DROP TABLE records",
            "nmac_rate > 0 -- comment",
            "nmac_rate > 0 /* block */",
            "nmac_rate > 0 */",
        ],
    )
    def test_multi_statement_and_comment_filters_rejected(
        self, store, where
    ):
        with pytest.raises(ValueError, match="not allowed"):
            store.records(where=where)
        with pytest.raises(ValueError, match="not allowed"):
            store.campaigns(where=where)

    def test_malformed_filter_is_clean_valueerror(self, test_table, store):
        make_campaign(test_table, scenarios=2, runs=2).run(
            seed=0, store=store
        )
        with pytest.raises(ValueError, match="malformed filter"):
            store.records(where="no_such_column > 1")
        with pytest.raises(ValueError, match="malformed filter"):
            store.campaigns(where="equipage ===")

    def test_legitimate_filters_still_work(self, test_table, store):
        results = make_campaign(test_table, scenarios=3, runs=2).run(
            seed=0, store=store
        )
        rows = store.records(where="nmac_rate >= ?", params=(0.0,))
        assert len(rows) == len(results)
        infos = store.campaigns(where="c.equipage = ?", params=("both",))
        assert len(infos) == 1


class TestPagination:
    def test_records_limit_offset_window_the_index_order(
        self, test_table, store
    ):
        make_campaign(test_table, scenarios=5, runs=2).run(seed=0, store=store)
        full = store.records()
        page = store.records(limit=2, offset=1)
        assert [r.index for r in page] == [r.index for r in full[1:3]]
        assert store.records(limit=0) == []
        assert [r.index for r in store.records(offset=4)] == [4]
        assert store.records(offset=99) == []

    def test_campaigns_limit_offset(self, test_table, store):
        for seed in range(3):
            make_campaign(test_table, scenarios=2, runs=2).run(
                seed=seed, store=store
            )
        everything = [c.campaign_id for c in store.campaigns()]
        assert len(everything) == 3
        window = [c.campaign_id for c in store.campaigns(limit=1, offset=1)]
        assert window == everything[1:2]

    def test_negative_limit_and_offset_rejected(self, test_table, store):
        with pytest.raises(ValueError, match="limit"):
            store.records(limit=-1)
        with pytest.raises(ValueError, match="offset"):
            store.campaigns(offset=-1)

    def test_record_rows_match_decoded_records(self, test_table, store):
        results = make_campaign(test_table, scenarios=3, runs=2).run(
            seed=0, store=store
        )
        campaign_id = results.metadata["campaign_id"]
        rows = store.record_rows(campaign_id, limit=2)
        assert len(rows) == 2
        for row, record in zip(rows, results):
            assert row["scenario_index"] == record.index
            assert row["name"] == record.name
            assert row["nmac_rate"] == record.nmac_rate
            assert row["min_separation"] == record.min_separation
        assert "params" not in rows[0]  # scalar view: no blob decode

    def test_iter_records_streams_in_index_order(self, test_table, store):
        results = make_campaign(test_table, scenarios=5, runs=2).run(
            seed=0, store=store
        )
        campaign_id = results.metadata["campaign_id"]
        streamed = list(store.iter_records(campaign_id, batch=2))
        assert [r.index for r in streamed] == [0, 1, 2, 3, 4]
        # assert_records_identical only needs len() + iteration.
        assert_records_identical(streamed, list(results))

    def test_totals(self, test_table, store):
        assert store.totals() == {"campaigns": 0, "records": 0}
        make_campaign(test_table, scenarios=3, runs=2).run(seed=0, store=store)
        assert store.totals() == {"campaigns": 1, "records": 3}


class TestThreadSafety:
    """One shared handle must serve concurrent readers (the service)."""

    def test_concurrent_readers_share_one_handle(self, test_table, store):
        import threading

        results = make_campaign(test_table, scenarios=4, runs=2).run(
            seed=0, store=store
        )
        campaign_id = results.metadata["campaign_id"]
        expected = store.aggregates(campaign_id)
        errors = []

        def read(loops=25):
            try:
                for _ in range(loops):
                    assert store.aggregates(campaign_id) == expected
                    rows = store.record_rows(campaign_id, limit=2, offset=1)
                    assert [r["scenario_index"] for r in rows] == [1, 2]
                    assert store.get_campaign(campaign_id).complete
                    assert len(store.campaigns()) == 1
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=read) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_reader_threads_while_writer_appends(self, test_table, store):
        """The service shape: request threads read while a run writes."""
        import threading

        campaign = make_campaign(test_table, scenarios=6, runs=2)
        stop = threading.Event()
        errors = []

        def poll():
            try:
                while not stop.is_set():
                    for info in store.campaigns():
                        store.record_rows(info.campaign_id, limit=3)
                        store.completed_indices(info.campaign_id)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        readers = [threading.Thread(target=poll) for _ in range(4)]
        for reader in readers:
            reader.start()
        try:
            results = campaign.run(seed=3, store=store)
        finally:
            stop.set()
            for reader in readers:
                reader.join()
        assert errors == []
        assert len(store.records()) == len(results)
