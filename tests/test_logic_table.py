"""Tests for repro.acasx.logic_table: interpolation, lookup, persistence."""

import numpy as np
import pytest

from repro.acasx.advisories import ADVISORIES, CLIMB, COC, NUM_ADVISORIES, AdvisorySense
from repro.acasx.config import AcasConfig
from repro.acasx.logic_table import LogicTable, make_cube_grid


class TestConstruction:
    def test_shape_validated(self, tiny_config):
        with pytest.raises(ValueError):
            LogicTable(tiny_config, np.zeros((2, 2, 2, 2)))

    def test_repr(self, tiny_table):
        assert "LogicTable" in repr(tiny_table)


class TestLookup:
    def test_q_values_shape(self, tiny_table):
        q = tiny_table.q_values_at(10.0, COC, 0.0, 0.0, 0.0)
        assert q.shape == (NUM_ADVISORIES,)

    def test_exact_grid_point_matches_storage(self, tiny_table):
        config = tiny_table.config
        h = config.h_points[3]
        r0 = config.rate_points[1]
        r1 = config.rate_points[2]
        tau = 7.0  # integer stage, no tau interpolation
        q = tiny_table.q_values_at(tau, CLIMB, h, r0, r1)
        flat = (
            3 * config.num_rate * config.num_rate
            + 1 * config.num_rate
            + 2
        )
        expected = tiny_table.q[7, CLIMB.index, :, flat]
        np.testing.assert_allclose(q, expected, rtol=1e-6)

    def test_tau_interpolation_between_stages(self, tiny_table):
        q_lo = tiny_table.q_values_at(7.0, COC, 0.0, 0.0, 0.0)
        q_hi = tiny_table.q_values_at(8.0, COC, 0.0, 0.0, 0.0)
        q_mid = tiny_table.q_values_at(7.5, COC, 0.0, 0.0, 0.0)
        np.testing.assert_allclose(q_mid, (q_lo + q_hi) / 2, rtol=1e-5)

    def test_tau_clamped_to_horizon(self, tiny_table):
        horizon = tiny_table.config.horizon
        q_at = tiny_table.q_values_at(float(horizon), COC, 0.0, 0.0, 0.0)
        q_beyond = tiny_table.q_values_at(1e9, COC, 0.0, 0.0, 0.0)
        np.testing.assert_allclose(q_at, q_beyond)

    def test_coords_clipped_to_grid(self, tiny_table):
        q_edge = tiny_table.q_values_at(5.0, COC, tiny_table.config.h_max, 0.0, 0.0)
        q_beyond = tiny_table.q_values_at(5.0, COC, 1e6, 0.0, 0.0)
        np.testing.assert_allclose(q_edge, q_beyond)

    def test_batch_matches_scalar(self, tiny_table):
        rng = np.random.default_rng(0)
        n = 32
        taus = rng.uniform(0, tiny_table.config.horizon, n)
        sras = rng.integers(0, NUM_ADVISORIES, n)
        coords = np.stack(
            [
                rng.uniform(-300, 300, n),
                rng.uniform(-13, 13, n),
                rng.uniform(-13, 13, n),
            ],
            axis=1,
        )
        batch = tiny_table.q_values_batch(taus, sras, coords)
        for i in range(n):
            scalar = tiny_table.q_values_at(
                taus[i], ADVISORIES[sras[i]], *coords[i]
            )
            np.testing.assert_allclose(batch[i], scalar, rtol=1e-5, atol=1e-4)


class TestBestAdvisory:
    def test_forbidden_sense_masked(self, test_table):
        unmasked = test_table.best_advisory(12.0, COC, 0.0, 0.0, 0.0)
        assert unmasked.is_active
        masked = test_table.best_advisory(
            12.0, COC, 0.0, 0.0, 0.0, forbidden_senses=[unmasked.sense]
        )
        assert masked.sense is not unmasked.sense

    def test_coc_always_allowed(self, test_table):
        advisory = test_table.best_advisory(
            12.0,
            COC,
            0.0,
            0.0,
            0.0,
            forbidden_senses=[AdvisorySense.UP, AdvisorySense.DOWN],
        )
        assert advisory is COC

    def test_policy_slice_shape(self, tiny_table):
        config = tiny_table.config
        slice_ = tiny_table.policy_slice(10.0, COC)
        assert slice_.shape == (config.num_h, config.num_rate)
        assert slice_.min() >= 0
        assert slice_.max() < NUM_ADVISORIES


def _q_values_batch_reference(table, tau, current_indices, coords):
    """The pre-refactor q_values_batch: a per-advisory loop of
    fancy-indexed sums.  Kept verbatim as the bitwise regression oracle
    for the single-gather implementation."""
    tau = np.asarray(tau, dtype=float)
    current_indices = np.asarray(current_indices, dtype=np.int64)
    n = tau.shape[0]
    k_float = np.clip(tau / table.config.dt, 0.0, table.config.horizon)
    k_lo = np.floor(k_float).astype(np.int64)
    k_hi = np.minimum(k_lo + 1, table.config.horizon)
    w_hi = k_float - k_lo

    indices, weights = table.grid.interp_table(coords)
    cube = table.config.cube_size
    flat_q = table.q.reshape(-1)
    out = np.empty((n, NUM_ADVISORIES))
    for a in range(NUM_ADVISORIES):
        base_lo = ((k_lo * NUM_ADVISORIES + current_indices)
                   * NUM_ADVISORIES + a) * cube
        base_hi = ((k_hi * NUM_ADVISORIES + current_indices)
                   * NUM_ADVISORIES + a) * cube
        q_lo = np.sum(flat_q[base_lo[:, None] + indices] * weights, axis=1)
        q_hi = np.sum(flat_q[base_hi[:, None] + indices] * weights, axis=1)
        out[:, a] = (1.0 - w_hi) * q_lo + w_hi * q_hi
    return out


class TestBatchLookupRegression:
    @pytest.mark.parametrize("n", [1, 7, 300, 1000])
    def test_bitwise_identical_to_reference(self, test_table, n):
        # The refactor (per-advisory loop -> one gather over an
        # (n, 2, NUM_ADVISORIES, corners) index block) must not change
        # a single output bit, at any batch width (crossing the
        # internal row-block boundary included).
        rng = np.random.default_rng(n)
        config = test_table.config
        tau = rng.uniform(-5.0, config.horizon * config.dt + 5.0, n)
        current = rng.integers(0, NUM_ADVISORIES, n)
        coords = np.stack(
            [
                rng.uniform(-1.5 * config.h_max, 1.5 * config.h_max, n),
                rng.uniform(-config.rate_max, config.rate_max, n),
                rng.uniform(-config.rate_max, config.rate_max, n),
            ],
            axis=1,
        )
        got = test_table.q_values_batch(tau, current, coords)
        expected = _q_values_batch_reference(test_table, tau, current, coords)
        np.testing.assert_array_equal(got, expected)


class TestPersistence:
    def test_bytes_round_trip(self, tiny_table):
        data = tiny_table.to_bytes()
        assert isinstance(data, bytes)
        loaded = LogicTable.from_bytes(data)
        np.testing.assert_array_equal(loaded.q, tiny_table.q)
        assert loaded.config == tiny_table.config
        assert loaded.metadata == tiny_table.metadata

    def test_save_load_round_trip(self, tiny_table, tmp_path):
        path = tmp_path / "table.npz"
        tiny_table.save(path)
        loaded = LogicTable.load(path)
        np.testing.assert_array_equal(loaded.q, tiny_table.q)
        assert loaded.config == tiny_table.config
        assert loaded.metadata == tiny_table.metadata

    def test_loaded_table_lookups_match(self, tiny_table, tmp_path):
        path = tmp_path / "table.npz"
        tiny_table.save(path)
        loaded = LogicTable.load(path)
        q1 = tiny_table.q_values_at(9.3, CLIMB, 12.0, -1.0, 2.0)
        q2 = loaded.q_values_at(9.3, CLIMB, 12.0, -1.0, 2.0)
        np.testing.assert_allclose(q1, q2)


class TestCubeGrid:
    def test_axes_match_config(self, tiny_config):
        grid = make_cube_grid(tiny_config)
        assert grid.axis("h").num == tiny_config.num_h
        assert grid.axis("dh0").num == tiny_config.num_rate
        assert grid.axis("dh1").num == tiny_config.num_rate
        assert grid.size == tiny_config.cube_size
