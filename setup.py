"""Setuptools shim.

The environment this library targets may lack the ``wheel`` package, in
which case PEP 660 editable installs fail with ``invalid command
'bdist_wheel'``.  Keeping a ``setup.py`` alongside ``pyproject.toml``
lets ``pip install -e .`` fall back to the legacy develop-mode path,
which needs only setuptools.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
